// Distributed execution (Section 4): 2PC baseline vs chopped pieces over
// recoverable queues -- correctness, latency ordering, message counts, and
// failure behaviour (2PC blocks; chopped commits and completes later).
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "dist/coordinator.h"
#include "dist/site.h"

namespace atp {
namespace {

using namespace std::chrono_literals;

constexpr Key kX = 1;  // account at site 0 (New York)
constexpr Key kY = 2;  // account at site 1 (Los Angeles)

class DistTest : public ::testing::Test {
 protected:
  void SetUp() override { start(std::chrono::microseconds(500)); }

  void start(std::chrono::microseconds one_way) {
    NetworkOptions n;
    n.one_way_latency = one_way;
    net_ = std::make_unique<SimNetwork>(2, n);
    DatabaseOptions dbo;
    dbo.scheduler = SchedulerKind::DC;
    dbo.lock_timeout = std::chrono::milliseconds(1000);
    ny_ = std::make_unique<Site>(0, *net_, dbo);
    la_ = std::make_unique<Site>(1, *net_, dbo);
    ny_->db().load(kX, 1000);
    la_->db().load(kY, 1000);
    sites_ = {ny_.get(), la_.get()};
    Coordinator::install_chop_handler(sites_);
    ny_->start();
    la_->start();
  }

  void TearDown() override {
    if (ny_) ny_->stop();
    if (la_) la_->stop();
  }

  DistTxnSpec transfer_spec(Value amount, Value piece_eps = 5000) {
    DistTxnSpec spec;
    spec.kind = TxnKind::Update;
    spec.piece_epsilon = piece_eps;
    spec.pieces = {
        DistPieceSpec{0, {Access::add(kX, -amount, amount)}},
        DistPieceSpec{1, {Access::add(kY, +amount, amount)}},
    };
    return spec;
  }

  std::unique_ptr<SimNetwork> net_;
  std::unique_ptr<Site> ny_, la_;
  std::vector<Site*> sites_;
};

TEST_F(DistTest, TwoPhaseCommitTransfersMoney) {
  Coordinator coord(*ny_, sites_);
  auto out = coord.run_2pc(transfer_spec(100));
  ASSERT_TRUE(out.ok()) << out.status().to_string();
  EXPECT_TRUE(out.value().completed);
  EXPECT_EQ(ny_->db().store().read_committed(kX).value(), 900);
  // Participant committed on the commit message.
  EXPECT_EQ(la_->db().store().read_committed(kY).value(), 1100);
}

TEST_F(DistTest, ChoppedTransfersMoneyAsynchronously) {
  Coordinator coord(*ny_, sites_);
  auto out = coord.run_chopped(transfer_spec(100), 5000ms);
  ASSERT_TRUE(out.ok()) << out.status().to_string();
  EXPECT_TRUE(out.value().completed);
  EXPECT_EQ(ny_->db().store().read_committed(kX).value(), 900);
  EXPECT_EQ(la_->db().store().read_committed(kY).value(), 1100);
}

TEST_F(DistTest, ChoppedClientLatencyBeatsTwoPhaseCommit) {
  // With 5 ms one-way latency the protocol rounds dominate: 2PC pays >= 2
  // RTTs (prepare + validate) before the client sees commit; the chopped
  // path pays none.
  TearDown();
  start(std::chrono::microseconds(5000));
  Coordinator coord(*ny_, sites_);

  double tpc = 0, chop = 0;
  const int kRounds = 5;
  for (int i = 0; i < kRounds; ++i) {
    auto a = coord.run_2pc(transfer_spec(10));
    ASSERT_TRUE(a.ok());
    tpc += a.value().client_latency_us;
    auto b = coord.run_chopped(transfer_spec(10), 5000ms);
    ASSERT_TRUE(b.ok());
    chop += b.value().client_latency_us;
  }
  // 2PC client latency should exceed chopped by roughly 2 RTTs = 20 ms.
  EXPECT_GT(tpc / kRounds, chop / kRounds + 15000);
}

TEST_F(DistTest, ChoppedUsesFewerProtocolMessages) {
  Coordinator coord(*ny_, sites_);
  net_->reset_stats();
  ASSERT_TRUE(coord.run_2pc(transfer_spec(10)).ok());
  const auto tpc = net_->stats().sent;
  net_->reset_stats();
  ASSERT_TRUE(coord.run_chopped(transfer_spec(10), 5000ms).ok());
  const auto chop = net_->stats().sent;
  // 2PC: prepare+vote, validate+ack, commit+ack = 6.
  // Chopped: qdata+qack for the piece, qdata+qack for the done notice = 4
  // (retransmissions possible but rare here).
  EXPECT_GT(tpc, chop);
}

TEST_F(DistTest, ValidationRoundIsOptional) {
  Coordinator coord(*ny_, sites_);
  net_->reset_stats();
  ASSERT_TRUE(coord.run_2pc(transfer_spec(10), /*validation_round=*/true).ok());
  const auto with = net_->stats().sent;
  net_->reset_stats();
  ASSERT_TRUE(coord.run_2pc(transfer_spec(10), /*validation_round=*/false).ok());
  const auto without = net_->stats().sent;
  EXPECT_EQ(with, without + 2);  // one fewer round trip
}

TEST_F(DistTest, SinglePieceChoppedIsPurelyLocal) {
  Coordinator coord(*ny_, sites_);
  DistTxnSpec spec;
  spec.kind = TxnKind::Update;
  spec.piece_epsilon = 0;
  spec.pieces = {DistPieceSpec{0, {Access::add(kX, -5, 5)}}};
  net_->reset_stats();
  auto out = coord.run_chopped(spec, 1000ms);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out.value().completed);
  EXPECT_EQ(net_->stats().sent, 0u);
}

TEST_F(DistTest, ParticipantCrashBeforePrepareAbortsCleanly) {
  Coordinator coord(*ny_, sites_);
  la_->crash();
  auto out = coord.run_2pc(transfer_spec(50), true, 300ms);
  EXPECT_FALSE(out.ok());
  la_->recover();
  // Nothing moved.
  EXPECT_EQ(ny_->db().store().read_committed(kX).value(), 1000);
  EXPECT_EQ(la_->db().store().read_committed(kY).value(), 1000);
}

TEST_F(DistTest, ChoppedSurvivesRemoteSiteFailure) {
  // The paper's availability claim: with the destination down, the first
  // piece still commits instantly; the second piece lands after recovery via
  // the durable queue.
  Coordinator coord(*ny_, sites_);
  la_->crash();
  auto out = coord.run_chopped(transfer_spec(100), 200ms);
  ASSERT_TRUE(out.ok());                    // client saw a commit
  EXPECT_FALSE(out.value().completed);      // but LA hasn't applied yet
  EXPECT_EQ(ny_->db().store().read_committed(kX).value(), 900);
  EXPECT_EQ(la_->db().store().read_committed(kY).value(), 1000);

  la_->recover();
  // Retransmission + handler must finish the job.
  EXPECT_TRUE(ny_->wait_done(out.value().gtid, 5000ms));
  EXPECT_EQ(la_->db().store().read_committed(kY).value(), 1100);
}

TEST_F(DistTest, TwoPhaseCommitBlocksAcrossParticipantCrash) {
  // Crash LA right after it votes: the coordinator's commit round must block
  // until recovery -- the blocking window the paper charges 2PC with.
  // Timeline with 20 ms one-way latency and no validation round:
  //   t=0    prepare sent          t=20ms  LA votes (now prepared)
  //   t=30ms LA crashes            t=40ms  vote arrives, commit round starts
  //   commit messages dropped until LA recovers at ~t=430ms.
  TearDown();
  start(std::chrono::microseconds(20000));
  Coordinator coord(*ny_, sites_);
  std::thread crasher([&] {
    std::this_thread::sleep_for(30ms);
    la_->crash();
    std::this_thread::sleep_for(400ms);
    la_->recover();
  });
  auto out = coord.run_2pc(transfer_spec(100), /*validation_round=*/false,
                           2000ms);
  crasher.join();
  ASSERT_TRUE(out.ok()) << out.status().to_string();
  EXPECT_TRUE(out.value().completed);
  // The prepared subtransaction survived the crash (force-logged vote) and
  // committed on the retransmitted decision.
  EXPECT_EQ(la_->db().store().read_committed(kY).value(), 1100);
  // Completion blocked across the ~400 ms outage.
  EXPECT_GT(out.value().complete_latency_us, 300000);
}

TEST_F(DistTest, ChainAcrossThreeHops) {
  // Three-piece chain: NY -> LA -> NY (money round-trips with a fee).
  Coordinator coord(*ny_, sites_);
  DistTxnSpec spec;
  spec.kind = TxnKind::Update;
  spec.piece_epsilon = 1000;
  spec.pieces = {
      DistPieceSpec{0, {Access::add(kX, -100, 100)}},
      DistPieceSpec{1, {Access::add(kY, +90, 90)}},
      DistPieceSpec{0, {Access::add(kX, +10, 10)}},
  };
  auto out = coord.run_chopped(spec, 5000ms);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out.value().completed);
  EXPECT_EQ(ny_->db().store().read_committed(kX).value(), 910);
  EXPECT_EQ(la_->db().store().read_committed(kY).value(), 1090);
}

TEST_F(DistTest, ConcurrentChoppedTransfersAllComplete) {
  Coordinator coord(*ny_, sites_);
  std::vector<std::uint64_t> gtids;
  for (int i = 0; i < 10; ++i) {
    auto out = coord.run_chopped(transfer_spec(10), 10ms);
    ASSERT_TRUE(out.ok());
    gtids.push_back(out.value().gtid);
  }
  for (auto g : gtids) EXPECT_TRUE(ny_->wait_done(g, 5000ms));
  EXPECT_EQ(ny_->db().store().read_committed(kX).value(), 900);
  EXPECT_EQ(la_->db().store().read_committed(kY).value(), 1100);
}

TEST_F(DistTest, DynamicEpsilonFlowsLeftoverDownTheChain) {
  // Distributed dynamic distribution: with the whole budget on piece 1 and
  // the leftover shipped in the continuation, a query whose first piece
  // consumed little lets the remote piece absorb a conflict that the static
  // pre-division would refuse.
  Coordinator coord(*ny_, sites_);

  // A standing uncommitted transfer leg at LA creates 80 of pending delta.
  Txn dirty = la_->db().begin(TxnKind::Update, EpsilonSpec::exporting(1000));
  ASSERT_TRUE(dirty.write(kY, 1080).ok());

  DistTxnSpec query;
  query.kind = TxnKind::Query;
  query.piece_epsilon = 50;  // static: each piece gets 50 < 80 -> piece 2
                             // would block on the fuzzy read
  query.dynamic_epsilon = true;  // dynamic: piece 1 uses ~0, ships ~100
  query.pieces = {DistPieceSpec{0, {Access::read(kX)}},
                  DistPieceSpec{1, {Access::read(kY)}}};
  auto out = coord.run_chopped(query, 5000ms);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out.value().completed);  // the 80 fit within the shipped ~100
  dirty.abort();
}

TEST_F(DistTest, ChoppedSurvivesLinkFailure) {
  // A severed link (not a crashed site) also may not lose pieces: the
  // durable outbound set retransmits once connectivity returns.
  Coordinator coord(*ny_, sites_);
  ny_->queues().set_retry_interval(10ms);
  net_->set_link_up(0, 1, false);
  auto out = coord.run_chopped(transfer_spec(70), 100ms);
  ASSERT_TRUE(out.ok());
  EXPECT_FALSE(out.value().completed);  // piece stuck behind the dead link
  EXPECT_EQ(ny_->db().store().read_committed(kX).value(), 930);
  EXPECT_EQ(la_->db().store().read_committed(kY).value(), 1000);

  net_->set_link_up(0, 1, true);
  EXPECT_TRUE(ny_->wait_done(out.value().gtid, 5000ms));
  EXPECT_EQ(la_->db().store().read_committed(kY).value(), 1070);
}

TEST_F(DistTest, WaitDoneTimesOutForUnknownGtid) {
  EXPECT_FALSE(ny_->wait_done(0xdeadbeef, 50ms));
}

TEST_F(DistTest, DistributedDivergenceControlBoundsRemoteQueries) {
  // The paper's NY/LA example: while a chopped transfer is in flight, a
  // chopped query sums both branches with a per-piece import budget.
  Coordinator coord(*ny_, sites_);
  ASSERT_TRUE(coord.run_chopped(transfer_spec(100), 5000ms).ok());

  DistTxnSpec query;
  query.kind = TxnKind::Query;
  query.piece_epsilon = 5000;
  query.pieces = {
      DistPieceSpec{0, {Access::read(kX)}},
      DistPieceSpec{1, {Access::read(kY)}},
  };
  auto out = coord.run_chopped(query, 5000ms);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out.value().completed);
}

}  // namespace
}  // namespace atp
