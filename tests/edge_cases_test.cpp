// Cross-cutting edge cases that the per-module suites do not pin down:
// report formatting, graph corner shapes, empty/degenerate inputs, and the
// smaller workload generators' structural guarantees.
#include <gtest/gtest.h>

#include "chop/analyzer.h"
#include "engine/executor.h"
#include "workload/airline.h"
#include "workload/orders.h"
#include "workload/payroll.h"

namespace atp {
namespace {

TEST(Report, HeaderAndRowAlign) {
  ExecutorReport r;
  r.method_name = "none+CC";
  r.committed = 42;
  const std::string header = ExecutorReport::header();
  const std::string row = r.row();
  EXPECT_FALSE(header.empty());
  EXPECT_NE(row.find("none+CC"), std::string::npos);
  EXPECT_NE(row.find("42"), std::string::npos);
}

TEST(Graph, SelfContainedTransactionHasNoEdges) {
  // One transaction, unchopped: no S edges (single piece), no C edges.
  const TxnProgram t = ProgramBuilder("t", TxnKind::Update)
                           .add(1, 1, 1)
                           .add(2, 1, 1)
                           .epsilon(10)
                           .build();
  const std::vector<TxnProgram> programs{t};
  const PieceGraph g =
      build_chopping_graph(programs, Chopping::unchopped(programs));
  EXPECT_TRUE(g.edges().empty());
  EXPECT_FALSE(g.has_sc_cycle());
  EXPECT_FALSE(g.restricted(0));
}

TEST(Graph, TwoBlocksShareAVertexWithoutScCycle) {
  // Piece p sits on a C-cycle (restricted) while its sibling q dangles:
  // restriction is per piece, not per transaction.
  PieceGraph g;
  const auto p = g.add_piece(0, true);
  const auto q = g.add_piece(0, true);
  const auto a = g.add_piece(1, true);
  const auto b = g.add_piece(2, true);
  g.add_s_edge(p, q);
  g.add_c_edge(p, a, 1);
  g.add_c_edge(a, b, 1);
  g.add_c_edge(b, p, 1);  // C-cycle through p only
  g.finalize();
  EXPECT_TRUE(g.restricted(p));
  EXPECT_FALSE(g.restricted(q));
  EXPECT_FALSE(g.has_sc_cycle());  // q never reaches the cycle
}

TEST(Graph, QueryOnlyStreamHasNoCEdges) {
  const TxnProgram q1 =
      ProgramBuilder("q1", TxnKind::Query).read(1).read(2).epsilon(1).build();
  const TxnProgram q2 =
      ProgramBuilder("q2", TxnKind::Query).read(1).read(2).epsilon(1).build();
  const std::vector<TxnProgram> programs{q1, q2};
  const PieceGraph g =
      build_chopping_graph(programs, Chopping::finest_candidate(programs));
  for (const auto& e : g.edges()) EXPECT_EQ(e.kind, EdgeKind::S);
  EXPECT_FALSE(g.has_sc_cycle());
}

TEST(Chopping, SingleOpProgramTriviallySafeToChop) {
  const TxnProgram t =
      ProgramBuilder("t", TxnKind::Update).add(1, 1, 1).epsilon(1).build();
  const std::vector<TxnProgram> programs{t};
  const Chopping c = finest_sr_chopping(programs);
  EXPECT_EQ(c.piece_count(0), 1u);
  EXPECT_TRUE(validate_sr_chopping(programs, c).ok());
}

TEST(Chopping, NotChoppableSurvivesBothSearches) {
  const TxnProgram t = ProgramBuilder("t", TxnKind::Update)
                           .add(1, 1, 1)
                           .add(2, 1, 1)
                           .epsilon(1000)
                           .not_choppable()
                           .build();
  const std::vector<TxnProgram> programs{t};
  EXPECT_EQ(finest_sr_chopping(programs).piece_count(0), 1u);
  EXPECT_EQ(finest_esr_chopping(programs).piece_count(0), 1u);
}

TEST(WorkloadShapes, AirlineInstancesMatchTypeArity) {
  AirlineConfig cfg;
  const Workload w = make_airline(cfg, 100, 9);
  for (const auto& inst : w.instances) {
    EXPECT_EQ(inst.ops.size(), w.types[inst.type_index].ops.size());
  }
}

TEST(WorkloadShapes, PayrollInstancesMatchTypeArity) {
  PayrollConfig cfg;
  const Workload w = make_payroll(cfg, 100, 9);
  for (const auto& inst : w.instances) {
    EXPECT_EQ(inst.ops.size(), w.types[inst.type_index].ops.size());
  }
}

TEST(WorkloadShapes, OrdersInstancesMatchTypeArity) {
  OrdersConfig cfg;
  const Workload w = make_orders(cfg, 100, 9);
  for (const auto& inst : w.instances) {
    EXPECT_EQ(inst.ops.size(), w.types[inst.type_index].ops.size());
  }
}

TEST(WorkloadShapes, OrderLinesAreDistinctItems) {
  OrdersConfig cfg;
  cfg.lines_per_order = 3;
  const Workload w = make_orders(cfg, 200, 17);
  for (const auto& inst : w.instances) {
    if (w.types[inst.type_index].kind != TxnKind::Update) continue;
    for (std::size_t i = 0; i < cfg.lines_per_order; ++i) {
      for (std::size_t j = i + 1; j < cfg.lines_per_order; ++j) {
        EXPECT_NE(inst.ops[i].item, inst.ops[j].item);
      }
    }
  }
}

TEST(PlanEdge, EmptyTypeStreamBuilds) {
  auto plan = ExecutionPlan::build({}, MethodConfig::method3());
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan.value().types.empty());
  EXPECT_EQ(plan.value().total_pieces(), 0u);
}

TEST(PlanEdge, ZeroEpsilonEsrChopDegeneratesGracefully) {
  // Limit_t = 0 leaves no inter-sibling allowance: the ESR search must fall
  // back to the SR chopping and still validate.
  const TxnProgram t = ProgramBuilder("t", TxnKind::Update)
                           .add(1, -5, 5)
                           .add(2, +5, 5)
                           .epsilon(0)
                           .build();
  const TxnProgram q =
      ProgramBuilder("q", TxnKind::Query).read(1).read(2).epsilon(0).build();
  auto plan = ExecutionPlan::build({t, q}, MethodConfig::method3());
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan.value().types[0].piece_ranges.size(), 1u);
  EXPECT_EQ(plan.value().types[0].z_is, 0);
}

}  // namespace
}  // namespace atp
