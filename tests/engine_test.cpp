// Execution plans (chopping + budgets per method), the piece runner, and the
// multi-worker executor across all Table-1 method configurations.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "engine/executor.h"
#include "engine/piece_runner.h"
#include "engine/plan.h"
#include "workload/banking.h"

namespace atp {
namespace {

constexpr Key X = 1, Y = 2;

TxnProgram transfer_type(Value bound, Value eps) {
  return ProgramBuilder("transfer", TxnKind::Update)
      .add(X, -10, bound)
      .add(Y, +10, bound)
      .epsilon(eps)
      .build();
}

TxnProgram audit_type(Value eps) {
  return ProgramBuilder("audit", TxnKind::Query)
      .read(X)
      .read(Y)
      .epsilon(eps)
      .build();
}

TEST(MethodConfig, NamesAreDistinct) {
  EXPECT_EQ(MethodConfig::baseline_sr().name(), "none+CC");
  EXPECT_EQ(MethodConfig::baseline_dc().name(), "none+DC");
  EXPECT_EQ(MethodConfig::sr_chop_cc().name(), "SR-chop+CC");
  EXPECT_EQ(MethodConfig::method1().name(), "SR-chop+DC/static");
  EXPECT_EQ(MethodConfig::method1(DistPolicy::Dynamic).name(),
            "SR-chop+DC/dynamic");
  EXPECT_EQ(MethodConfig::method2().name(), "ESR-chop+CC");
  EXPECT_EQ(MethodConfig::method3().name(), "ESR-chop+DC/static");
}

TEST(ExecutionPlan, UnchoppedPlanHasSinglePieces) {
  const std::vector<TxnProgram> types{transfer_type(40, 100),
                                      audit_type(100)};
  auto plan = ExecutionPlan::build(types, MethodConfig::baseline_sr());
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan.value().types.size(), 2u);
  EXPECT_EQ(plan.value().total_pieces(), 2u);
}

TEST(ExecutionPlan, SrChopMergesUnderGlobalAudit) {
  // The audit covers both items: SR-chopping must keep the transfer whole.
  const std::vector<TxnProgram> types{transfer_type(40, 100),
                                      audit_type(100)};
  auto plan = ExecutionPlan::build(types, MethodConfig::sr_chop_cc());
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan.value().types[0].piece_ranges.size(), 1u);
}

TEST(ExecutionPlan, EsrChopKeepsTransferInTwoPieces) {
  const std::vector<TxnProgram> types{transfer_type(40, 200),
                                      audit_type(200)};
  auto plan = ExecutionPlan::build(types, MethodConfig::method2());
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan.value().types[0].piece_ranges.size(), 2u);
  EXPECT_GT(plan.value().types[0].z_is, 0);
}

TEST(ExecutionPlan, Method3ReservesInterSiblingBudget) {
  const std::vector<TxnProgram> types{transfer_type(40, 200),
                                      audit_type(200)};
  auto plan = ExecutionPlan::build(types, MethodConfig::method3());
  ASSERT_TRUE(plan.ok());
  const auto& tp = plan.value().types[0];
  // Eq. 6: the DC budget is Limit_t minus Z^is.
  EXPECT_EQ(tp.plan_info.limit_total, tp.type.epsilon_limit - tp.z_is);
  // Under CC (method 2) the full limit is retained.
  auto plan2 = ExecutionPlan::build(types, MethodConfig::method2());
  ASSERT_TRUE(plan2.ok());
  EXPECT_EQ(plan2.value().types[0].plan_info.limit_total,
            types[0].epsilon_limit);
}

TEST(ExecutionPlan, DoubledStreamCatchesSelfConflicts) {
  // A type whose instances conflict with EACH OTHER (absolute writes): a
  // single-copy analysis would chop it, the doubled analysis must not.
  const TxnProgram t = ProgramBuilder("selfwrite", TxnKind::Update)
                           .write(X, 5, 5)
                           .write(Y, 5, 5)
                           .epsilon(1000)
                           .build();
  auto plan = ExecutionPlan::build({t}, MethodConfig::sr_chop_cc());
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan.value().types[0].piece_ranges.size(), 1u);
}

TEST(ExecutionPlan, CommutingTransfersChopDespiteEachOther) {
  // Adds commute, so two transfer instances do not conflict: chopping OK.
  auto plan =
      ExecutionPlan::build({transfer_type(40, 100)}, MethodConfig::sr_chop_cc());
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan.value().types[0].piece_ranges.size(), 2u);
}

TEST(ExecutionPlan, DependencyTreeFollowsSharedItems) {
  // Pieces touching a common item chain up; unrelated pieces hang off the
  // root and may run with Figure 2's parallel fan-out split.
  const TxnProgram t = ProgramBuilder("multi", TxnKind::Update)
                           .add(X, -1, 1)   // piece 0: X
                           .add(Y, +1, 1)   // piece 1: Y   (nothing shared)
                           .add(Y, -1, 1)   // piece 2: Y   (shares with 1)
                           .add(X, +1, 1)   // piece 3: X   (shares with 0)
                           .epsilon(100)
                           .build();
  auto plan = ExecutionPlan::build({t}, MethodConfig::sr_chop_cc());
  ASSERT_TRUE(plan.ok());
  const auto& info = plan.value().types[0].plan_info;
  ASSERT_EQ(info.piece_count, 4u);
  EXPECT_EQ(info.children[0], (std::vector<std::size_t>{1, 3}));
  EXPECT_EQ(info.children[1], (std::vector<std::size_t>{2}));
  EXPECT_TRUE(info.children[2].empty());
  EXPECT_TRUE(info.children[3].empty());
}

// --- PieceRunner ---------------------------------------------------------

class PieceRunnerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_.load(X, 1000);
    db_.load(Y, 1000);
  }
  Database db_{DatabaseOptions{SchedulerKind::DC,
                               std::chrono::milliseconds(500), false}};
  Rng rng_{42};
};

TEST_F(PieceRunnerTest, RunsChoppedTransferToCommit) {
  auto plan =
      ExecutionPlan::build({transfer_type(40, 100)}, MethodConfig::method1());
  ASSERT_TRUE(plan.ok());
  TxnInstance inst;
  inst.type_index = 0;
  inst.ops = {Access::add(X, -25, 40), Access::add(Y, +25, 40)};
  PieceRunner runner(db_, nullptr);
  const auto r = runner.run(plan.value().types[0], inst,
                            DistPolicy::Static, rng_);
  EXPECT_TRUE(r.committed);
  EXPECT_FALSE(r.rolled_back);
  EXPECT_EQ(db_.store().read_committed(X).value(), 975);
  EXPECT_EQ(db_.store().read_committed(Y).value(), 1025);
}

TEST_F(PieceRunnerTest, ProgrammedRollbackAbandonsTransaction) {
  TxnProgram t = ProgramBuilder("t", TxnKind::Update)
                     .add(X, -5, 40)
                     .rollback_point()
                     .add(Y, +5, 40)
                     .epsilon(100)
                     .build();
  auto plan = ExecutionPlan::build({t}, MethodConfig::method1());
  ASSERT_TRUE(plan.ok());
  TxnInstance inst;
  inst.type_index = 0;
  inst.ops = {Access::add(X, -5, 40), Access::add(Y, +5, 40)};
  inst.take_rollback = true;
  RunMetrics metrics;
  PieceRunner runner(db_, &metrics);
  const auto r = runner.run(plan.value().types[0], inst,
                            DistPolicy::Static, rng_);
  EXPECT_FALSE(r.committed);
  EXPECT_TRUE(r.rolled_back);
  EXPECT_EQ(metrics.aborts_rollback.get(), 1u);
  // Nothing persisted.
  EXPECT_EQ(db_.store().read_committed(X).value(), 1000);
  EXPECT_EQ(db_.store().read_committed(Y).value(), 1000);
}

TEST_F(PieceRunnerTest, QueryObservedResultAndErrorMetric) {
  auto plan =
      ExecutionPlan::build({audit_type(100)}, MethodConfig::baseline_dc());
  ASSERT_TRUE(plan.ok());
  TxnInstance inst;
  inst.type_index = 0;
  inst.ops = {Access::read(X), Access::read(Y)};
  inst.has_expected_result = true;
  inst.expected_result = 2000;
  RunMetrics metrics;
  PieceRunner runner(db_, &metrics);
  const auto r = runner.run(plan.value().types[0], inst,
                            DistPolicy::Static, rng_);
  EXPECT_TRUE(r.committed);
  EXPECT_EQ(r.observed_result, 2000);
  EXPECT_EQ(metrics.query_error.summarize().max, 0);
}

// --- Executor across every Table-1 cell ----------------------------------

class ExecutorMatrixTest : public ::testing::TestWithParam<MethodConfig> {};

TEST_P(ExecutorMatrixTest, BankingMixCommitsEverythingAndConservesMoney) {
  const MethodConfig method = GetParam();
  BankingConfig cfg;
  cfg.branches = 2;
  cfg.accounts_per_branch = 16;
  cfg.max_transfer = 50;
  cfg.branch_audit_fraction = 0.15;
  cfg.global_audit_fraction = 0.10;
  cfg.update_epsilon = 600;
  cfg.query_epsilon = 800;
  const Workload w = make_banking(cfg, 120, /*seed=*/7);

  auto plan = ExecutionPlan::build(w.types, method);
  ASSERT_TRUE(plan.ok()) << plan.status().to_string();

  Database db(Executor::database_options(method));
  w.load_into(db);

  ExecutorOptions opts;
  opts.workers = 4;
  opts.seed = 11;
  const ExecutorReport report = Executor::run(db, plan.value(), w.instances,
                                              opts);

  EXPECT_EQ(report.committed + report.rolled_back, w.instances.size());
  EXPECT_EQ(report.budget_violations, 0u);

  // Conservation at quiescence, regardless of method.
  Value sum = 0;
  for (const auto& [k, v] : db.store().snapshot_committed()) sum += v;
  EXPECT_EQ(sum, w.total_money);

  // Realized audit error respects the ESR bound.
  EXPECT_LE(report.query_error.max, cfg.query_epsilon + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    AllMethods, ExecutorMatrixTest,
    ::testing::Values(MethodConfig::baseline_sr(), MethodConfig::baseline_dc(),
                      MethodConfig::sr_chop_cc(), MethodConfig::method1(),
                      MethodConfig::method1(DistPolicy::Dynamic),
                      MethodConfig::method2(), MethodConfig::method3(),
                      MethodConfig::method3(DistPolicy::Dynamic)),
    [](const ::testing::TestParamInfo<MethodConfig>& info) {
      std::string n = info.param.name();
      for (char& c : n) {
        if (c == '+' || c == '-' || c == '/') c = '_';
      }
      return n;
    });

TEST(ExecutorParallelPieces, FanOutExecutionCommitsAndConserves) {
  // Multi-hop transfers produce dependency trees with fan-out; Figure 2's
  // parallel Schedule() must reach the same final state as sequential.
  BankingConfig cfg;
  cfg.branches = 2;
  cfg.accounts_per_branch = 8;
  cfg.hops = 3;
  cfg.global_audit_fraction = 0.1;
  cfg.update_epsilon = 2000;
  cfg.query_epsilon = 4000;
  const Workload w = make_banking(cfg, 60, 21);
  const MethodConfig method = MethodConfig::method3(DistPolicy::Dynamic);
  auto plan = ExecutionPlan::build(w.types, method);
  ASSERT_TRUE(plan.ok());

  for (const bool parallel : {false, true}) {
    Database db(Executor::database_options(method));
    w.load_into(db);
    ExecutorOptions opts;
    opts.workers = 3;
    opts.parallel_pieces = parallel;
    const ExecutorReport r = Executor::run(db, plan.value(), w.instances,
                                           opts);
    EXPECT_EQ(r.committed, w.instances.size()) << "parallel=" << parallel;
    EXPECT_EQ(r.budget_violations, 0u);
    Value sum = 0;
    for (const auto& [k, v] : db.store().snapshot_committed()) sum += v;
    EXPECT_EQ(sum, w.total_money) << "parallel=" << parallel;
  }
}

TEST(ExecutorHistory, CcMethodsProduceSerializableHistories) {
  BankingConfig cfg;
  cfg.branches = 2;
  cfg.accounts_per_branch = 8;
  cfg.global_audit_fraction = 0.1;
  const Workload w = make_banking(cfg, 60, 3);
  for (const MethodConfig method :
       {MethodConfig::baseline_sr(), MethodConfig::sr_chop_cc()}) {
    auto plan = ExecutionPlan::build(w.types, method);
    ASSERT_TRUE(plan.ok());
    Database db(Executor::database_options(
        method, std::chrono::milliseconds(2000), /*record_history=*/true));
    w.load_into(db);
    ExecutorOptions opts;
    opts.workers = 4;
    const auto report = Executor::run(db, plan.value(), w.instances, opts);
    EXPECT_GT(report.committed, 0u);
    // Piece-level serializability always holds under CC.
    EXPECT_TRUE(db.history().committed_projection_serializable());
  }
}

TEST(ExecutorChopping, AuditFreeStreamChopsUnderSr) {
  BankingConfig cfg;
  cfg.branches = 2;
  cfg.accounts_per_branch = 8;
  cfg.global_audit_fraction = 0;  // no SC-cycle source at all
  cfg.branch_audit_fraction = 0;
  const Workload w = make_banking(cfg, 10, 5);
  auto sr = ExecutionPlan::build(w.types, MethodConfig::sr_chop_cc());
  ASSERT_TRUE(sr.ok());
  // Cross-branch transfers chop into 2 pieces under SR (adds commute, so
  // transfer types never conflict with each other).
  for (const auto& tp : sr.value().types) {
    EXPECT_EQ(tp.piece_ranges.size(), 2u) << tp.type.name;
  }
}

TEST(ExecutorChopping, AuditsKillSrChopButNotEsrChop) {
  // The Section 4 story: once audits read across the transfer's two
  // branches, the chopped transfer sits on an SC-cycle -> SR-chopping must
  // merge it back; ESR-chopping keeps it in two pieces because the transfer
  // bound fits the eps budgets (Definition 1).
  BankingConfig cfg;
  cfg.branches = 2;
  cfg.accounts_per_branch = 8;
  cfg.global_audit_fraction = 0.1;
  cfg.branch_audit_fraction = 0.1;
  cfg.max_transfer = 50;
  cfg.update_epsilon = 1000;  // >= Z^is of a chopped transfer
  cfg.query_epsilon = 2000;
  const Workload w = make_banking(cfg, 10, 5);

  auto sr = ExecutionPlan::build(w.types, MethodConfig::sr_chop_cc());
  ASSERT_TRUE(sr.ok());
  auto esr = ExecutionPlan::build(w.types, MethodConfig::method2());
  ASSERT_TRUE(esr.ok());

  std::size_t sr_transfer_pieces = 0, esr_transfer_pieces = 0;
  for (std::size_t i = 0; i < w.types.size(); ++i) {
    if (w.types[i].kind != TxnKind::Update) continue;
    sr_transfer_pieces += sr.value().types[i].piece_ranges.size();
    esr_transfer_pieces += esr.value().types[i].piece_ranges.size();
  }
  EXPECT_GT(esr_transfer_pieces, sr_transfer_pieces);
}

}  // namespace
}  // namespace atp
