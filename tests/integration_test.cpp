// End-to-end integration: the three workload generators through the full
// stack (plan -> executor -> metrics), cross-checking each domain's oracle.
#include <gtest/gtest.h>

#include "audit/esr_certifier.h"
#include "audit/sr_certifier.h"
#include "engine/executor.h"
#include "trace/tracer.h"
#include "workload/airline.h"
#include "workload/banking.h"
#include "workload/orders.h"
#include "workload/payroll.h"

namespace atp {
namespace {

TEST(BankingWorkload, GeneratorShapesAreSane) {
  BankingConfig cfg;
  cfg.branches = 3;
  cfg.accounts_per_branch = 10;
  cfg.branch_audit_fraction = 0.2;
  cfg.global_audit_fraction = 0.1;
  const Workload w = make_banking(cfg, 200, 99);
  EXPECT_EQ(w.initial_data.size(), 30u);
  EXPECT_EQ(w.instances.size(), 200u);
  EXPECT_EQ(w.total_money, 30 * cfg.initial_balance);
  std::size_t audits = 0, transfers = 0, globals = 0;
  for (const auto& inst : w.instances) {
    const auto& type = w.types[inst.type_index];
    if (type.kind == TxnKind::Update) {
      ++transfers;
      ASSERT_EQ(inst.ops.size(), 2u);
      EXPECT_EQ(inst.ops[0].delta, -inst.ops[1].delta);  // conservation
      EXPECT_LE(std::abs(inst.ops[0].delta), cfg.max_transfer);
    } else if (inst.has_expected_result) {
      ++globals;
      EXPECT_EQ(inst.ops.size(), 30u);  // reads every account
      EXPECT_EQ(inst.expected_result, w.total_money);
    } else {
      ++audits;
      EXPECT_EQ(inst.ops.size(), cfg.audit_scan);
    }
  }
  EXPECT_GT(transfers, 100u);
  EXPECT_GT(audits, 10u);
  EXPECT_GT(globals, 5u);
}

TEST(BankingWorkload, DeterministicForSameSeed) {
  BankingConfig cfg;
  const Workload a = make_banking(cfg, 50, 42);
  const Workload b = make_banking(cfg, 50, 42);
  ASSERT_EQ(a.instances.size(), b.instances.size());
  for (std::size_t i = 0; i < a.instances.size(); ++i) {
    EXPECT_EQ(a.instances[i].type_index, b.instances[i].type_index);
    ASSERT_EQ(a.instances[i].ops.size(), b.instances[i].ops.size());
    for (std::size_t j = 0; j < a.instances[i].ops.size(); ++j) {
      EXPECT_EQ(a.instances[i].ops[j].item, b.instances[i].ops[j].item);
      EXPECT_EQ(a.instances[i].ops[j].delta, b.instances[i].ops[j].delta);
    }
  }
}

TEST(BankingWorkload, RollbacksHappenAtConfiguredRate) {
  BankingConfig cfg;
  cfg.rollback_probability = 0.2;
  cfg.branch_audit_fraction = 0;
  cfg.global_audit_fraction = 0;
  const Workload w = make_banking(cfg, 1000, 5);
  std::size_t rollbacks = 0;
  for (const auto& inst : w.instances) rollbacks += inst.take_rollback;
  EXPECT_NEAR(double(rollbacks) / 1000.0, 0.2, 0.05);
}

TEST(AirlineWorkload, ReservationsRespectCapsAndRun) {
  AirlineConfig cfg;
  cfg.flights = 8;
  cfg.price_cap = 300;
  const Workload w = make_airline(cfg, 150, 17);
  for (const auto& inst : w.instances) {
    if (w.types[inst.type_index].kind != TxnKind::Update) continue;
    EXPECT_EQ(inst.ops[0].delta, -1);                 // one seat
    EXPECT_GT(inst.ops[1].delta, 0);                  // positive fare
    EXPECT_LE(inst.ops[1].delta, cfg.price_cap);
  }

  const MethodConfig method = MethodConfig::method3();
  auto plan = ExecutionPlan::build(w.types, method);
  ASSERT_TRUE(plan.ok()) << plan.status().to_string();
  Database db(Executor::database_options(method));
  w.load_into(db);
  ExecutorOptions opts;
  opts.workers = 4;
  const auto report = Executor::run(db, plan.value(), w.instances, opts);
  EXPECT_EQ(report.committed, w.instances.size());
  EXPECT_EQ(report.budget_violations, 0u);

  // Seats sold == revenue entries: sum(seats) + reservations == initial.
  Value seats = 0, revenue = 0;
  std::size_t reservations = 0;
  for (const auto& inst : w.instances) {
    if (w.types[inst.type_index].kind == TxnKind::Update) ++reservations;
  }
  for (std::size_t f = 0; f < cfg.flights; ++f) {
    seats += db.store().read_committed(airline_seats_key(f)).value();
    revenue += db.store().read_committed(airline_revenue_key(f)).value();
  }
  EXPECT_EQ(seats, cfg.seats_per_flight * Value(cfg.flights) -
                       Value(reservations));
  EXPECT_GT(revenue, 0);
}

TEST(OrdersWorkload, NewOrdersChopAndStockBalances) {
  OrdersConfig cfg;
  cfg.districts = 3;
  cfg.items_per_district = 16;
  cfg.lines_per_order = 3;
  const Workload w = make_orders(cfg, 150, 44);

  const MethodConfig method = MethodConfig::method3(DistPolicy::Dynamic);
  auto plan = ExecutionPlan::build(w.types, method);
  ASSERT_TRUE(plan.ok()) << plan.status().to_string();
  // Orders commute (all Adds), so ESR keeps them in multiple pieces despite
  // the cross-cutting revenue report.
  std::size_t max_pieces = 0;
  for (const auto& tp : plan.value().types) {
    if (tp.type.kind == TxnKind::Update) {
      max_pieces = std::max(max_pieces, tp.piece_ranges.size());
    }
  }
  EXPECT_GT(max_pieces, 1u);

  Database db(Executor::database_options(method));
  w.load_into(db);
  ExecutorOptions opts;
  opts.workers = 4;
  const auto report = Executor::run(db, plan.value(), w.instances, opts);
  EXPECT_EQ(report.committed, w.instances.size());
  EXPECT_EQ(report.budget_violations, 0u);

  // Stock decrements == sum of committed order quantities; order counts ==
  // number of committed new-order instances per district.
  Value expected_count = 0, stock_taken_expected = 0;
  for (const auto& inst : w.instances) {
    if (w.types[inst.type_index].kind != TxnKind::Update) continue;
    ++expected_count;
    for (const auto& op : inst.ops) {
      if (op.type == AccessType::Add && op.delta < 0) {
        stock_taken_expected += -op.delta;
      }
    }
  }
  Value count = 0, stock = 0;
  for (std::size_t d = 0; d < cfg.districts; ++d) {
    count += db.store().read_committed(orders_count_key(d)).value();
    for (std::size_t i = 0; i < cfg.items_per_district; ++i) {
      stock += db.store().read_committed(orders_stock_key(d, i)).value();
    }
  }
  EXPECT_EQ(count, expected_count);
  EXPECT_EQ(stock, cfg.initial_stock * Value(cfg.districts) *
                           Value(cfg.items_per_district) -
                       stock_taken_expected);
}

TEST(PayrollWorkload, RaisesConserveTotalCompensation) {
  PayrollConfig cfg;
  cfg.departments = 3;
  cfg.employees_per_dept = 8;
  const Workload w = make_payroll(cfg, 120, 23);

  const MethodConfig method = MethodConfig::method1(DistPolicy::Dynamic);
  auto plan = ExecutionPlan::build(w.types, method);
  ASSERT_TRUE(plan.ok()) << plan.status().to_string();
  Database db(Executor::database_options(method));
  w.load_into(db);
  ExecutorOptions opts;
  opts.workers = 4;
  const auto report = Executor::run(db, plan.value(), w.instances, opts);
  EXPECT_EQ(report.committed, w.instances.size());
  EXPECT_EQ(report.budget_violations, 0u);
  EXPECT_LE(report.query_error.max, cfg.query_epsilon + 1e-9);

  Value sum = 0;
  for (const auto& [k, v] : db.store().snapshot_committed()) sum += v;
  EXPECT_EQ(sum, w.total_money);
}

TEST(Integration, DynamicDistributionNeverViolatesWhereStaticHolds) {
  // Both policies must satisfy Condition 2; dynamic should produce no more
  // epsilon aborts than static on the same stream (it can only widen piece
  // budgets).
  BankingConfig cfg;
  cfg.branches = 2;
  cfg.accounts_per_branch = 8;
  cfg.global_audit_fraction = 0.2;
  cfg.update_epsilon = 600;
  cfg.query_epsilon = 900;
  const Workload w = make_banking(cfg, 150, 31);

  std::uint64_t eps_aborts[2] = {0, 0};
  int i = 0;
  for (const DistPolicy policy : {DistPolicy::Static, DistPolicy::Dynamic}) {
    const MethodConfig method = MethodConfig::method3(policy);
    auto plan = ExecutionPlan::build(w.types, method);
    ASSERT_TRUE(plan.ok());
    Database db(Executor::database_options(method));
    w.load_into(db);
    ExecutorOptions opts;
    opts.workers = 4;
    opts.seed = 77;
    const auto report = Executor::run(db, plan.value(), w.instances, opts);
    EXPECT_EQ(report.committed + report.rolled_back, w.instances.size());
    EXPECT_EQ(report.budget_violations, 0u);
    eps_aborts[i++] = report.epsilon_aborts;
  }
  SUCCEED() << "static eps aborts " << eps_aborts[0] << " dynamic "
            << eps_aborts[1];
}

TEST(Integration, CertifiersAuditEveryMethod) {
  // The trace-replay certifiers as independent oracles over the full stack:
  // CC histories must be conflict-serializable at piece granularity, and the
  // fuzziness ledger of Methods 1-3 must respect every committed eps-spec.
  BankingConfig cfg;
  cfg.branches = 2;
  cfg.accounts_per_branch = 8;
  cfg.branch_audit_fraction = 0.2;
  cfg.global_audit_fraction = 0.1;
  const Workload w = make_banking(cfg, 120, 53);

  for (const MethodConfig method :
       {MethodConfig::baseline_sr(), MethodConfig::method1(),
        MethodConfig::method2(), MethodConfig::method3()}) {
    Tracer tracer(1 << 18);
    auto plan = ExecutionPlan::build(w.types, method);
    ASSERT_TRUE(plan.ok());
    DatabaseOptions dbo = Executor::database_options(method);
    dbo.tracer = &tracer;
    Database db(dbo);
    w.load_into(db);
    ExecutorOptions opts;
    opts.workers = 4;
    opts.seed = 11;
    const auto report = Executor::run(db, plan.value(), w.instances, opts);
    EXPECT_EQ(report.committed + report.rolled_back, w.instances.size());
    EXPECT_EQ(report.budget_violations, 0u);

    const auto events = tracer.collect();
    const std::uint64_t dropped = tracer.dropped();
    if (method.sched == SchedulerKind::CC) {
      const SrReport sr = certify_sr(events, nullptr, dropped);
      EXPECT_TRUE(sr.complete) << method.name();
      EXPECT_TRUE(sr.serializable)
          << method.name() << ": " << sr.describe();
      EXPECT_GT(sr.committed_txns, 0u);
    }
    const EsrReport esr = certify_esr(events, dropped);
    EXPECT_TRUE(esr.complete) << method.name();
    EXPECT_TRUE(esr.ok) << method.name() << ": " << esr.describe();
    EXPECT_GT(esr.committed_ets, 0u);
  }
}

TEST(Integration, SerialExecutionMatchesAnyMethodFinalState) {
  // With one worker there is no concurrency: every method must produce the
  // exact same final database state as the serial ground truth.
  BankingConfig cfg;
  cfg.branches = 2;
  cfg.accounts_per_branch = 6;
  cfg.global_audit_fraction = 0.1;
  cfg.rollback_probability = 0.1;
  const Workload w = make_banking(cfg, 60, 13);

  std::unordered_map<Key, Value> reference;
  bool first = true;
  for (const MethodConfig method :
       {MethodConfig::baseline_sr(), MethodConfig::method1(),
        MethodConfig::method2(), MethodConfig::method3()}) {
    auto plan = ExecutionPlan::build(w.types, method);
    ASSERT_TRUE(plan.ok());
    Database db(Executor::database_options(method));
    w.load_into(db);
    ExecutorOptions opts;
    opts.workers = 1;  // serial
    const auto report = Executor::run(db, plan.value(), w.instances, opts);
    EXPECT_EQ(report.committed + report.rolled_back, w.instances.size());
    auto snap = db.store().snapshot_committed();
    if (first) {
      reference = snap;
      first = false;
    } else {
      EXPECT_EQ(snap, reference) << "method " << method.name();
    }
  }
}

}  // namespace
}  // namespace atp
