// Eps-spec distribution over pieces: static even split and Figure 2's
// dynamic leftover propagation, including the paper's Limit_t = 51
// walk-through from Section 2.2.
#include <gtest/gtest.h>

#include "limits/distribution.h"

namespace atp {
namespace {

TEST(ChopPlanInfo, ChainBuildsLinearDependencies) {
  const auto info =
      ChopPlanInfo::chain({true, false, true}, TxnKind::Update, 30);
  EXPECT_EQ(info.piece_count, 3u);
  EXPECT_EQ(info.restricted_count(), 2u);
  ASSERT_EQ(info.children.size(), 3u);
  EXPECT_EQ(info.children[0], (std::vector<std::size_t>{1}));
  EXPECT_EQ(info.children[1], (std::vector<std::size_t>{2}));
  EXPECT_TRUE(info.children[2].empty());
}

TEST(StaticDistribution, EvenSplitOverRestrictedPieces) {
  // Figure 1's walk-through: Limit_t = 51, three restricted pieces (p1, p3,
  // p5) get 17 each; unrestricted p2, p4 get infinity.
  const auto info = ChopPlanInfo::chain({true, false, true, false, true},
                                        TxnKind::Update, 51);
  StaticDistribution dist(info);
  EXPECT_EQ(dist.limit_for(0), 17);
  EXPECT_EQ(dist.limit_for(1), kInfiniteLimit);
  EXPECT_EQ(dist.limit_for(2), 17);
  EXPECT_EQ(dist.limit_for(3), kInfiniteLimit);
  EXPECT_EQ(dist.limit_for(4), 17);
}

TEST(StaticDistribution, AllRestrictedSplitsEverything) {
  const auto info =
      ChopPlanInfo::chain({true, true, true, true}, TxnKind::Update, 100);
  StaticDistribution dist(info);
  for (std::size_t p = 0; p < 4; ++p) EXPECT_EQ(dist.limit_for(p), 25);
}

TEST(StaticDistribution, NoRestrictedPiecesMeansAllInfinite) {
  const auto info =
      ChopPlanInfo::chain({false, false}, TxnKind::Update, 100);
  StaticDistribution dist(info);
  EXPECT_EQ(dist.limit_for(0), kInfiniteLimit);
  EXPECT_EQ(dist.limit_for(1), kInfiniteLimit);
}

TEST(StaticDistribution, ReportIsANoOp) {
  const auto info = ChopPlanInfo::chain({true, true}, TxnKind::Update, 10);
  StaticDistribution dist(info);
  dist.report_committed(0, 5);
  EXPECT_EQ(dist.limit_for(1), 5);  // unchanged half of 10
}

TEST(DynamicDistribution, FirstPieceGetsWholeLimit) {
  const auto info =
      ChopPlanInfo::chain({true, true, true}, TxnKind::Update, 60);
  DynamicDistribution dist(info);
  EXPECT_EQ(dist.limit_for(0), 60);
}

TEST(DynamicDistribution, LeftoverFlowsDownTheChain) {
  const auto info =
      ChopPlanInfo::chain({true, true, true}, TxnKind::Update, 60);
  DynamicDistribution dist(info);
  EXPECT_EQ(dist.limit_for(0), 60);
  dist.report_committed(0, 10);  // LO = 50
  EXPECT_EQ(dist.limit_for(1), 50);
  dist.report_committed(1, 50);  // consumed everything: LO = 0
  EXPECT_EQ(dist.limit_for(2), 0);
}

TEST(DynamicDistribution, UnrestrictedPieceForwardsFullQuota) {
  // Figure 2: an unrestricted piece runs with infinity and passes its
  // *assigned* limit (not infinity) to its dependents.
  const auto info =
      ChopPlanInfo::chain({true, false, true}, TxnKind::Update, 40);
  DynamicDistribution dist(info);
  dist.report_committed(0, 15);  // LO = 25 flows to piece 1
  EXPECT_EQ(dist.limit_for(1), kInfiniteLimit);  // unrestricted: bypasses DC
  dist.report_committed(1, 999);  // its measured Z is over-estimation noise
  EXPECT_EQ(dist.limit_for(2), 25);  // full 25 forwarded, nothing consumed
}

TEST(DynamicDistribution, TreeFanOutSplitsEvenly) {
  // Piece 0 feeds pieces 1 and 2 in parallel (Figure 2's Schedule(S, L/|S|)).
  ChopPlanInfo info;
  info.piece_count = 3;
  info.restricted = {true, true, true};
  info.children = {{1, 2}, {}, {}};
  info.kind = TxnKind::Update;
  info.limit_total = 90;
  DynamicDistribution dist(info);
  EXPECT_EQ(dist.limit_for(0), 90);
  dist.report_committed(0, 30);  // LO = 60, split two ways
  EXPECT_EQ(dist.limit_for(1), 30);
  EXPECT_EQ(dist.limit_for(2), 30);
}

TEST(DynamicDistribution, NegativeLeftoverClampsToZero) {
  const auto info = ChopPlanInfo::chain({true, true}, TxnKind::Update, 10);
  DynamicDistribution dist(info);
  dist.report_committed(0, 15);  // overshoot (defensive path)
  EXPECT_EQ(dist.limit_for(1), 0);
}

TEST(DynamicDistribution, PaperScenarioAvoidsStaticRollback) {
  // Section 2.2.2: with Limit_t = 51 and static thirds (17 each), a piece
  // accumulating Z = 20 must roll back even though the transaction-wide
  // total (10 + 20) is well under 51.  Dynamic distribution hands piece 3
  // the leftover 41 and the rollback disappears.
  const auto info = ChopPlanInfo::chain({true, false, true, false, true},
                                        TxnKind::Update, 51);
  StaticDistribution st(info);
  EXPECT_LT(st.limit_for(2), 20);  // 17 < 20: static forces a rollback

  DynamicDistribution dy(info);
  EXPECT_EQ(dy.limit_for(0), 51);
  dy.report_committed(0, 10);                      // p1: Z=10, LO=41
  EXPECT_EQ(dy.limit_for(1), kInfiniteLimit);      // p2 unrestricted
  dy.report_committed(1, 5);                       // forwards 41
  EXPECT_EQ(dy.limit_for(2), 41);                  // p3 can absorb Z=20
  EXPECT_GT(dy.limit_for(2), 20);
  dy.report_committed(2, 20);                      // LO = 21
  dy.report_committed(3, 0);                       // p4 unrestricted, forwards
  EXPECT_EQ(dy.limit_for(4), 21);
}

TEST(DynamicDistribution, SumOfConsumedNeverExceedsTotal) {
  // Along a chain, whatever each restricted piece consumes is subtracted
  // from what flows on: sum(Z_p) <= Limit_t by construction.
  const auto info = ChopPlanInfo::chain({true, true, true, true},
                                        TxnKind::Update, 100);
  DynamicDistribution dist(info);
  Value consumed = 0;
  Value z[] = {40, 30, 20, 10};
  for (std::size_t p = 0; p < 4; ++p) {
    const Value limit = dist.limit_for(p);
    const Value use = std::min(z[p], limit);
    consumed += use;
    dist.report_committed(p, use);
  }
  EXPECT_LE(consumed, 100);
}

}  // namespace
}  // namespace atp
