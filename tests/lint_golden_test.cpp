// Golden-file tests for the lint report renderings.  The exact text and JSON
// are contracts: CI pipelines match on rule IDs and the JSON schema, so any
// drift must be a conscious decision (regenerate with ATP_REGEN_GOLDEN=1 in
// the environment and review the diff).
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/lint.h"
#include "chop/analyzer.h"

#ifndef ATP_GOLDEN_DIR
#error "ATP_GOLDEN_DIR must point at tests/golden"
#endif

namespace atp {
namespace {

using namespace atp::analysis;

constexpr Key X = 1, Y = 2, Z = 3;

std::string golden_path(const std::string& name) {
  return std::string(ATP_GOLDEN_DIR) + "/" + name;
}

void expect_matches_golden(const std::string& actual,
                           const std::string& name) {
  const std::string path = golden_path(name);
  if (std::getenv("ATP_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::trunc);
    out << actual;
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    return;
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing golden file " << path
                         << " (regenerate with ATP_REGEN_GOLDEN=1)";
  std::ostringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), actual) << "golden mismatch for " << name;
}

std::vector<TxnProgram> transfer_audit(Value bound, Value transfer_eps,
                                       Value audit_eps) {
  return {ProgramBuilder("transfer", TxnKind::Update)
              .add(X, -10, bound)
              .add(Y, +10, bound)
              .epsilon(transfer_eps)
              .build(),
          ProgramBuilder("audit", TxnKind::Query)
              .read(X)
              .read(Y)
              .epsilon(audit_eps)
              .build()};
}

// The canonical seeded-bad chopping: both transactions fully chopped.  SR
// reports the SC-cycle with its witness; ESR accepts the identical chopping
// (the cycle has no update-update C edge and the limits are generous).
TEST(LintGolden, SrRejectsChoppedTransferAudit) {
  const auto programs = transfer_audit(100, 1000, 1000);
  const Chopping chopping = Chopping::finest_candidate(programs);
  const LintReport report = lint_sr_chopping(programs, chopping);
  ASSERT_EQ(report.error_count(), 1u);
  expect_matches_golden(report.to_text(), "sr_chopped_transfer_audit.txt");
  expect_matches_golden(report.to_json(), "sr_chopped_transfer_audit.json");

  const LintReport esr = lint_esr_chopping(programs, chopping);
  EXPECT_TRUE(esr.ok()) << esr.to_text();
  expect_matches_golden(esr.to_json(), "esr_tolerates_same_chopping.json");
}

// ESR's own failure modes: tight limits turn the tolerated cycle into EP001,
// and a second writer turns it into SC002 with an update-update witness.
TEST(LintGolden, EsrOverflowAndUpdateUpdate) {
  const auto overflow = transfer_audit(100, 150, 10000);
  const Chopping chop_first({{0, 1}, {0}});
  expect_matches_golden(lint_esr_chopping(overflow, chop_first).to_text(),
                        "esr_zis_overflow.txt");

  const std::vector<TxnProgram> writers{ProgramBuilder("w1", TxnKind::Update)
                                            .write(X, 1, 1)
                                            .write(Y, 1, 1)
                                            .epsilon(1000)
                                            .build(),
                                        ProgramBuilder("w2", TxnKind::Update)
                                            .write(X, 2, 1)
                                            .write(Y, 2, 1)
                                            .epsilon(1000)
                                            .build()};
  const LintReport report =
      lint_esr_chopping(writers, Chopping::finest_candidate(writers));
  expect_matches_golden(report.to_text(), "esr_update_update_cycle.txt");
  expect_matches_golden(report.to_json(), "esr_update_update_cycle.json");
}

TEST(LintGolden, RollbackEscape) {
  TxnProgram p = ProgramBuilder("risky", TxnKind::Update)
                     .add(X, 1, 1)
                     .add(Y, 1, 1)
                     .rollback_point()
                     .add(Z, 1, 1)
                     .epsilon(100)
                     .build();
  const std::vector<TxnProgram> programs{p};
  const LintReport report =
      lint_sr_chopping(programs, Chopping({{0, 1, 2}}));
  expect_matches_golden(report.to_text(), "rollback_escape.txt");
}

}  // namespace
}  // namespace atp
