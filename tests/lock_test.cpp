#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "lock/lock_manager.h"

namespace atp {
namespace {

using namespace std::chrono_literals;

class LockTest : public ::testing::Test {
 protected:
  LockManager locks_{std::chrono::milliseconds(500)};
  NeverFuzzyResolver cc_;
};

TEST_F(LockTest, SharedLocksCoexist) {
  EXPECT_TRUE(locks_.acquire(1, 10, LockMode::Shared, cc_).ok());
  EXPECT_TRUE(locks_.acquire(2, 10, LockMode::Shared, cc_).ok());
  EXPECT_TRUE(locks_.holds(1, 10, LockMode::Shared));
  EXPECT_TRUE(locks_.holds(2, 10, LockMode::Shared));
}

TEST_F(LockTest, ExclusiveExcludesShared) {
  ASSERT_TRUE(locks_.acquire(1, 10, LockMode::Exclusive, cc_).ok());
  std::atomic<bool> granted{false};
  std::thread t([&] {
    const Status s = locks_.acquire(2, 10, LockMode::Shared, cc_);
    granted = s.ok();
  });
  std::this_thread::sleep_for(50ms);
  EXPECT_FALSE(granted.load());  // still blocked
  locks_.release_all(1);
  t.join();
  EXPECT_TRUE(granted.load());  // granted after release
}

TEST_F(LockTest, ReentrantSharedAndExclusive) {
  ASSERT_TRUE(locks_.acquire(1, 10, LockMode::Shared, cc_).ok());
  EXPECT_TRUE(locks_.acquire(1, 10, LockMode::Shared, cc_).ok());
  ASSERT_TRUE(locks_.acquire(1, 11, LockMode::Exclusive, cc_).ok());
  EXPECT_TRUE(locks_.acquire(1, 11, LockMode::Exclusive, cc_).ok());
  // X covers S.
  EXPECT_TRUE(locks_.acquire(1, 11, LockMode::Shared, cc_).ok());
  EXPECT_TRUE(locks_.holds(1, 11, LockMode::Shared));
}

TEST_F(LockTest, UpgradeSharedToExclusive) {
  ASSERT_TRUE(locks_.acquire(1, 10, LockMode::Shared, cc_).ok());
  EXPECT_TRUE(locks_.acquire(1, 10, LockMode::Exclusive, cc_).ok());
  EXPECT_TRUE(locks_.holds(1, 10, LockMode::Exclusive));
  // Only one holder entry remains.
  EXPECT_EQ(locks_.holders_of(10).size(), 1u);
}

TEST_F(LockTest, UpgradeWaitsForOtherReaders) {
  ASSERT_TRUE(locks_.acquire(1, 10, LockMode::Shared, cc_).ok());
  ASSERT_TRUE(locks_.acquire(2, 10, LockMode::Shared, cc_).ok());
  std::atomic<bool> upgraded{false};
  std::thread t([&] {
    upgraded = locks_.acquire(1, 10, LockMode::Exclusive, cc_).ok();
  });
  std::this_thread::sleep_for(50ms);
  EXPECT_FALSE(upgraded.load());
  locks_.release_all(2);
  t.join();
  EXPECT_TRUE(upgraded.load());
}

TEST_F(LockTest, DeadlockDetectedAndRequesterAborted) {
  ASSERT_TRUE(locks_.acquire(1, 10, LockMode::Exclusive, cc_).ok());
  ASSERT_TRUE(locks_.acquire(2, 11, LockMode::Exclusive, cc_).ok());
  std::thread t([&] {
    // txn 1 waits for key 11 (held by 2)...
    const Status s = locks_.acquire(1, 11, LockMode::Exclusive, cc_);
    if (s.ok()) locks_.release_all(1);
  });
  std::this_thread::sleep_for(50ms);
  // ...and txn 2 closing the cycle must be refused as the deadlock victim.
  const Status s = locks_.acquire(2, 10, LockMode::Exclusive, cc_);
  EXPECT_EQ(s.code(), ErrorCode::kDeadlock);
  locks_.release_all(2);
  t.join();
  locks_.release_all(1);
  EXPECT_GE(locks_.stats().deadlocks, 1u);
}

TEST_F(LockTest, UpgradeDeadlockBetweenTwoUpgraders) {
  ASSERT_TRUE(locks_.acquire(1, 10, LockMode::Shared, cc_).ok());
  ASSERT_TRUE(locks_.acquire(2, 10, LockMode::Shared, cc_).ok());
  std::thread t([&] {
    const Status s = locks_.acquire(1, 10, LockMode::Exclusive, cc_);
    if (s.ok()) locks_.release_all(1);
  });
  std::this_thread::sleep_for(50ms);
  const Status s = locks_.acquire(2, 10, LockMode::Exclusive, cc_);
  EXPECT_EQ(s.code(), ErrorCode::kDeadlock);
  locks_.release_all(2);
  t.join();
  locks_.release_all(1);
}

TEST_F(LockTest, TimeoutWhenHolderNeverReleases) {
  locks_.set_timeout(100ms);
  ASSERT_TRUE(locks_.acquire(1, 10, LockMode::Exclusive, cc_).ok());
  const Status s = locks_.acquire(2, 10, LockMode::Exclusive, cc_);
  EXPECT_EQ(s.code(), ErrorCode::kTimeout);
  EXPECT_GE(locks_.stats().timeouts, 1u);
}

TEST_F(LockTest, ReleaseAllIsIdempotentAndComplete) {
  ASSERT_TRUE(locks_.acquire(1, 10, LockMode::Shared, cc_).ok());
  ASSERT_TRUE(locks_.acquire(1, 11, LockMode::Exclusive, cc_).ok());
  locks_.release_all(1);
  locks_.release_all(1);  // idempotent
  EXPECT_FALSE(locks_.holds(1, 10, LockMode::Shared));
  EXPECT_FALSE(locks_.holds(1, 11, LockMode::Shared));
  // Keys fully free for others.
  EXPECT_TRUE(locks_.acquire(2, 10, LockMode::Exclusive, cc_).ok());
  EXPECT_TRUE(locks_.acquire(2, 11, LockMode::Exclusive, cc_).ok());
}

TEST_F(LockTest, FifoFairnessWriterNotStarvedByReaders) {
  ASSERT_TRUE(locks_.acquire(1, 10, LockMode::Shared, cc_).ok());
  std::atomic<bool> writer_granted{false};
  std::thread writer([&] {
    writer_granted = locks_.acquire(2, 10, LockMode::Exclusive, cc_).ok();
    if (writer_granted) locks_.release_all(2);
  });
  std::this_thread::sleep_for(50ms);  // writer is now queued
  std::atomic<bool> reader_done{false};
  std::thread reader([&] {
    // This reader arrived after the waiting writer: it must NOT overtake.
    const Status s = locks_.acquire(3, 10, LockMode::Shared, cc_);
    reader_done = true;
    if (s.ok()) locks_.release_all(3);
  });
  std::this_thread::sleep_for(50ms);
  EXPECT_FALSE(reader_done.load());   // reader waits behind writer
  EXPECT_FALSE(writer_granted.load());
  locks_.release_all(1);
  writer.join();
  reader.join();
  EXPECT_TRUE(writer_granted.load());
  EXPECT_TRUE(reader_done.load());
}

TEST_F(LockTest, WaitStatsCountBlocking) {
  ASSERT_TRUE(locks_.acquire(1, 10, LockMode::Exclusive, cc_).ok());
  std::thread t([&] {
    (void)locks_.acquire(2, 10, LockMode::Shared, cc_);
    locks_.release_all(2);
  });
  std::this_thread::sleep_for(30ms);
  locks_.release_all(1);
  t.join();
  EXPECT_GE(locks_.stats().waits, 1u);
}

TEST_F(LockTest, HoldersOfReportsModes) {
  ASSERT_TRUE(locks_.acquire(1, 10, LockMode::Shared, cc_).ok());
  ASSERT_TRUE(locks_.acquire(2, 10, LockMode::Shared, cc_).ok());
  const auto holders = locks_.holders_of(10);
  ASSERT_EQ(holders.size(), 2u);
  for (const auto& h : holders) {
    EXPECT_EQ(h.mode, LockMode::Shared);
    EXPECT_FALSE(h.fuzzy);
  }
}

// A resolver that always grants, to exercise the fuzzy-grant plumbing
// without divergence-control bookkeeping.
class AlwaysFuzzyResolver final : public ConflictResolver {
 public:
  bool try_fuzzy_grant(TxnId, LockMode, Key,
                       std::span<const LockHolder>) override {
    return true;
  }
  bool eligible_pair(TxnId, LockMode, TxnId, LockMode) override {
    return true;
  }
};

TEST_F(LockTest, FuzzyResolverGrantsPastConflict) {
  AlwaysFuzzyResolver fuzzy;
  ASSERT_TRUE(locks_.acquire(1, 10, LockMode::Exclusive, cc_).ok());
  // With the fuzzy resolver the S request does not block.
  EXPECT_TRUE(locks_.acquire(2, 10, LockMode::Shared, fuzzy).ok());
  const auto holders = locks_.holders_of(10);
  ASSERT_EQ(holders.size(), 2u);
  bool saw_fuzzy = false;
  for (const auto& h : holders) saw_fuzzy |= h.fuzzy;
  EXPECT_TRUE(saw_fuzzy);
  EXPECT_GE(locks_.stats().fuzzy_grants, 1u);
}

TEST_F(LockTest, MixedResolversCoexist) {
  AlwaysFuzzyResolver fuzzy;
  ASSERT_TRUE(locks_.acquire(1, 10, LockMode::Exclusive, cc_).ok());
  ASSERT_TRUE(locks_.acquire(2, 10, LockMode::Shared, fuzzy).ok());
  // A pure-2PL shared request still blocks behind the X holder.
  locks_.set_timeout(100ms);
  const Status s = locks_.acquire(3, 10, LockMode::Shared, cc_);
  EXPECT_EQ(s.code(), ErrorCode::kTimeout);
}

TEST_F(LockTest, CancelledWaiterReturnsAborted) {
  ASSERT_TRUE(locks_.acquire(1, 10, LockMode::Exclusive, cc_).ok());
  Status result = Status::Ok();
  std::thread t([&] { result = locks_.acquire(2, 10, LockMode::Shared, cc_); });
  std::this_thread::sleep_for(50ms);
  locks_.release_all(2);  // cross-thread cancel of txn 2's wait
  t.join();
  EXPECT_EQ(result.code(), ErrorCode::kAborted);
  locks_.release_all(1);
}

TEST_F(LockTest, ThreeWayDeadlockDetected) {
  ASSERT_TRUE(locks_.acquire(1, 10, LockMode::Exclusive, cc_).ok());
  ASSERT_TRUE(locks_.acquire(2, 11, LockMode::Exclusive, cc_).ok());
  ASSERT_TRUE(locks_.acquire(3, 12, LockMode::Exclusive, cc_).ok());
  std::thread t1([&] {
    (void)locks_.acquire(1, 11, LockMode::Exclusive, cc_);  // 1 -> 2
  });
  std::thread t2([&] {
    (void)locks_.acquire(2, 12, LockMode::Exclusive, cc_);  // 2 -> 3
  });
  std::this_thread::sleep_for(80ms);
  // 3 -> 1 closes the cycle.
  const Status s = locks_.acquire(3, 10, LockMode::Exclusive, cc_);
  EXPECT_EQ(s.code(), ErrorCode::kDeadlock);
  locks_.release_all(3);
  t2.join();
  locks_.release_all(2);
  t1.join();
  locks_.release_all(1);
}

}  // namespace
}  // namespace atp
