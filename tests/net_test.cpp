#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "common/stopwatch.h"
#include "fault/fault.h"
#include "net/network.h"

namespace atp {
namespace {

using namespace std::chrono_literals;

NetworkOptions fast() {
  NetworkOptions o;
  o.one_way_latency = std::chrono::microseconds(200);
  return o;
}

TEST(SimNetwork, DeliversRequestToDestination) {
  SimNetwork net(2, fast());
  Message m;
  m.from = 0;
  m.to = 1;
  m.type = "ping";
  net.send(std::move(m));
  auto r = net.receive_request(1, 100ms);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->type, "ping");
  EXPECT_EQ(r->from, 0u);
}

TEST(SimNetwork, AssignsUniqueIds) {
  SimNetwork net(2, fast());
  Message a, b;
  a.from = b.from = 0;
  a.to = b.to = 1;
  const auto ia = net.send(std::move(a));
  const auto ib = net.send(std::move(b));
  EXPECT_NE(ia, ib);
}

TEST(SimNetwork, LatencyIsPaid) {
  NetworkOptions o;
  o.one_way_latency = std::chrono::microseconds(50000);  // 50 ms
  SimNetwork net(2, o);
  Message m;
  m.from = 0;
  m.to = 1;
  Stopwatch clock;
  net.send(std::move(m));
  auto r = net.receive_request(1, 500ms);
  ASSERT_TRUE(r.has_value());
  EXPECT_GE(clock.elapsed_us(), 45000);
}

TEST(SimNetwork, ReceiveTimesOutOnSilence) {
  SimNetwork net(2, fast());
  Stopwatch clock;
  auto r = net.receive_request(1, 50ms);
  EXPECT_FALSE(r.has_value());
  EXPECT_GE(clock.elapsed_us(), 45000);
}

TEST(SimNetwork, RepliesAndRequestsAreSegregated) {
  SimNetwork net(2, fast());
  Message req;
  req.from = 0;
  req.to = 1;
  req.type = "req";
  const auto corr = net.send(std::move(req));
  Message reply;
  reply.from = 1;
  reply.to = 0;
  reply.type = "resp";
  reply.correlation = corr;
  net.send(std::move(reply));

  // receive_request at site 0 must NOT surface the reply.
  EXPECT_FALSE(net.receive_request(0, 30ms).has_value());
  auto r = net.receive_reply(0, corr, 100ms);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->type, "resp");
}

TEST(SimNetwork, ReplyMatchingIsSelective) {
  SimNetwork net(2, fast());
  Message r1, r2;
  r1.from = r2.from = 1;
  r1.to = r2.to = 0;
  r1.correlation = 111;
  r1.type = "first";
  r2.correlation = 222;
  r2.type = "second";
  net.send(std::move(r1));
  net.send(std::move(r2));
  // Ask for the second correlation first; the other stays queued.
  auto b = net.receive_reply(0, 222, 100ms);
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->type, "second");
  auto a = net.receive_reply(0, 111, 100ms);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->type, "first");
}

TEST(SimNetwork, DownSiteDropsInbound) {
  SimNetwork net(2, fast());
  net.set_site_up(1, false);
  Message m;
  m.from = 0;
  m.to = 1;
  net.send(std::move(m));
  EXPECT_EQ(net.stats().dropped, 1u);
  net.set_site_up(1, true);
  EXPECT_FALSE(net.receive_request(1, 30ms).has_value());
}

TEST(SimNetwork, CrashLosesInFlightInbox) {
  NetworkOptions o;
  o.one_way_latency = std::chrono::microseconds(50000);
  SimNetwork net(2, o);
  Message m;
  m.from = 0;
  m.to = 1;
  net.send(std::move(m));  // in flight for 50 ms
  net.set_site_up(1, false);  // crash before delivery
  net.set_site_up(1, true);
  EXPECT_FALSE(net.receive_request(1, 100ms).has_value());
}

TEST(SimNetwork, DownLinkDropsBothDirections) {
  SimNetwork net(3, fast());
  net.set_link_up(0, 1, false);
  Message m;
  m.from = 0;
  m.to = 1;
  net.send(std::move(m));
  EXPECT_FALSE(net.receive_request(1, 30ms).has_value());
  Message back;
  back.from = 1;
  back.to = 0;
  net.send(std::move(back));
  EXPECT_FALSE(net.receive_request(0, 30ms).has_value());
  // Unrelated link unaffected.
  Message ok;
  ok.from = 0;
  ok.to = 2;
  net.send(std::move(ok));
  EXPECT_TRUE(net.receive_request(2, 100ms).has_value());
}

TEST(SimNetwork, StatsCountSentDeliveredDropped) {
  SimNetwork net(2, fast());
  Message a;
  a.from = 0;
  a.to = 1;
  net.send(std::move(a));
  (void)net.receive_request(1, 100ms);
  net.set_site_up(1, false);
  Message b;
  b.from = 0;
  b.to = 1;
  net.send(std::move(b));
  const NetStats s = net.stats();
  EXPECT_EQ(s.sent, 2u);
  EXPECT_EQ(s.delivered, 1u);
  EXPECT_EQ(s.dropped, 1u);
  net.reset_stats();
  EXPECT_EQ(net.stats().sent, 0u);
}

TEST(SimNetwork, DownSenderDropsOutbound) {
  // A crashed process cannot put messages on the wire: sends FROM a down
  // site are dropped (and accounted), not queued for later.
  SimNetwork net(2, fast());
  net.set_site_up(0, false);
  Message m;
  m.from = 0;
  m.to = 1;
  const auto id = net.send(std::move(m));
  EXPECT_GT(id, 0u);  // the id is still assigned
  const NetStats s = net.stats();
  EXPECT_EQ(s.sent, 1u);
  EXPECT_EQ(s.dropped, 1u);
  EXPECT_EQ(s.delivered, 0u);
  // The drop is permanent: recovery does not resurrect the message.
  net.set_site_up(0, true);
  EXPECT_FALSE(net.receive_request(1, 30ms).has_value());
}

TEST(SimNetwork, CrashDiscardsOnlyTheCrashedInbox) {
  NetworkOptions o;
  o.one_way_latency = std::chrono::microseconds(30000);
  SimNetwork net(3, o);
  Message to1, to2;
  to1.from = 0;
  to1.to = 1;
  to2.from = 0;
  to2.to = 2;
  net.send(std::move(to1));
  net.send(std::move(to2));
  net.set_site_up(1, false);  // crash while both are in flight
  net.set_site_up(1, true);
  // Site 1's in-flight message died with it; site 2's is untouched.
  EXPECT_FALSE(net.receive_request(1, 60ms).has_value());
  EXPECT_TRUE(net.receive_request(2, 200ms).has_value());
  const NetStats s = net.stats();
  EXPECT_EQ(s.sent, 2u);
  EXPECT_EQ(s.dropped, 0u);    // both were deliverable at send time
  EXPECT_EQ(s.delivered, 1u);  // only site 2's arrived
}

TEST(SimNetwork, LinkStateIsSymmetricAndIndependentOfSites) {
  SimNetwork net(3, fast());
  // Down and up are symmetric no matter which endpoint order is used.
  net.set_link_up(0, 1, false);
  EXPECT_FALSE(net.link_up(0, 1));
  EXPECT_FALSE(net.link_up(1, 0));
  net.set_link_up(1, 0, true);
  EXPECT_TRUE(net.link_up(0, 1));
  EXPECT_TRUE(net.link_up(1, 0));
  // A down link leaves both sites up, and drops are accounted per send.
  net.set_link_up(0, 1, false);
  EXPECT_TRUE(net.site_up(0));
  EXPECT_TRUE(net.site_up(1));
  Message m;
  m.from = 1;
  m.to = 0;
  net.send(std::move(m));
  EXPECT_EQ(net.stats().dropped, 1u);
  // Restoring the link restores delivery (but not the dropped message).
  net.set_link_up(0, 1, true);
  EXPECT_FALSE(net.receive_request(0, 30ms).has_value());
  Message again;
  again.from = 1;
  again.to = 0;
  net.send(std::move(again));
  EXPECT_TRUE(net.receive_request(0, 100ms).has_value());
}

TEST(SimNetwork, CrashSendRaceNeverLeaksIntoClearedInbox) {
  // Regression: send() used to check the destination's liveness under the
  // state lock, drop it, and push into the inbox afterwards -- so a send
  // racing with a crash could publish into an inbox set_site_up(false) had
  // already cleared, and the "crashed" site would receive a message that
  // should have died with it.  The liveness check now happens under the
  // inbox lock; pre-fix this hammer loop leaks within a few hundred
  // iterations.
  NetworkOptions o;
  o.one_way_latency = std::chrono::microseconds(0);  // receivable on arrival
  SimNetwork net(2, o);
  for (int iter = 0; iter < 300; ++iter) {
    std::thread sender([&net] {
      for (int i = 0; i < 8; ++i) {
        Message m;
        m.from = 0;
        m.to = 1;
        m.type = "burst";
        net.send(std::move(m));
      }
    });
    net.set_site_up(1, false);  // races the burst
    sender.join();
    net.set_site_up(1, true);
    // Every burst message either observed the down site (dropped) or was
    // published before the crash (cleared); none may survive into the
    // post-crash inbox.
    EXPECT_FALSE(net.receive_request(1, 0ms).has_value()) << "iter " << iter;
  }
}

TEST(SimNetwork, InjectedDropIsCountedAndNeverDelivered) {
  SimNetwork net(2, fast());
  FaultSpec spec;
  spec.drop = 1.0;
  FaultInjector inj(7, spec);
  net.set_fault_injector(&inj);
  Message m;
  m.from = 0;
  m.to = 1;
  m.type = "doomed";
  net.send(std::move(m));
  EXPECT_FALSE(net.receive_request(1, 30ms).has_value());
  EXPECT_EQ(net.stats().dropped, 1u);
  ASSERT_EQ(inj.trace().size(), 1u);
  EXPECT_EQ(inj.trace()[0].kind, FaultKind::NetDrop);
}

TEST(SimNetwork, InjectedDuplicateTravelsUnderFreshId) {
  // Regression: reply correlation keys on the id of one specific
  // transmission, so a duplicated message must NOT reuse the original's id
  // -- the copy gets a fresh one from the same sequence.
  SimNetwork net(2, fast());
  FaultSpec spec;
  spec.duplicate = 1.0;
  FaultInjector inj(7, spec);
  net.set_fault_injector(&inj);
  Message m;
  m.from = 0;
  m.to = 1;
  m.type = "twin";
  m.gtid = 99;
  const auto id = net.send(std::move(m));
  auto a = net.receive_request(1, 100ms);
  auto b = net.receive_request(1, 100ms);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  // Same content, distinct ids, and exactly one travels under the id the
  // sender was told.
  EXPECT_EQ(a->type, "twin");
  EXPECT_EQ(b->type, "twin");
  EXPECT_EQ(a->gtid, 99u);
  EXPECT_EQ(b->gtid, 99u);
  EXPECT_NE(a->id, b->id);
  EXPECT_TRUE(a->id == id || b->id == id);
  // Both transmissions are accounted as sent.
  EXPECT_EQ(net.stats().sent, 2u);
  EXPECT_EQ(net.stats().delivered, 2u);
}

TEST(SimNetwork, JitterIsBoundedAndSeedDeterministic) {
  // Jitter draws come from a seeded, unbiased uniform over [0, jitter]:
  // two networks built with the same jitter_seed deliver an identical
  // burst in the identical (reordered) sequence.
  NetworkOptions o;
  o.one_way_latency = std::chrono::microseconds(0);
  o.jitter = std::chrono::microseconds(300000);  // big spread: reorders
  o.jitter_seed = 42;
  SimNetwork net_a(2, o), net_b(2, o);
  constexpr int kMsgs = 6;
  for (std::uint64_t i = 0; i < kMsgs; ++i) {
    Message m;
    m.from = 0;
    m.to = 1;
    m.gtid = i;
    Message copy = m;
    net_a.send(std::move(m));
    net_b.send(std::move(copy));
  }
  std::vector<std::uint64_t> order_a, order_b;
  Stopwatch clock;
  for (int i = 0; i < kMsgs; ++i) {
    auto ra = net_a.receive_request(1, 1000ms);
    auto rb = net_b.receive_request(1, 1000ms);
    ASSERT_TRUE(ra.has_value());
    ASSERT_TRUE(rb.has_value());
    order_a.push_back(ra->gtid);
    order_b.push_back(rb->gtid);
  }
  EXPECT_EQ(order_a, order_b);
  // And the jitter stayed within its bound (generous slack for slow CI).
  EXPECT_LE(clock.elapsed_us(), 900000);
}

TEST(SimNetwork, PayloadsTravelByAny) {
  SimNetwork net(2, fast());
  Message m;
  m.from = 0;
  m.to = 1;
  m.payload = std::make_pair(std::string("queue"), std::any(std::uint64_t{7}));
  net.send(std::move(m));
  auto r = net.receive_request(1, 100ms);
  ASSERT_TRUE(r.has_value());
  const auto* envelope =
      std::any_cast<std::pair<std::string, std::any>>(&r->payload);
  ASSERT_NE(envelope, nullptr);
  EXPECT_EQ(envelope->first, "queue");
  EXPECT_EQ(std::any_cast<std::uint64_t>(envelope->second), 7u);
}

}  // namespace
}  // namespace atp
