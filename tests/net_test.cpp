#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "common/stopwatch.h"
#include "net/network.h"

namespace atp {
namespace {

using namespace std::chrono_literals;

NetworkOptions fast() {
  NetworkOptions o;
  o.one_way_latency = std::chrono::microseconds(200);
  return o;
}

TEST(SimNetwork, DeliversRequestToDestination) {
  SimNetwork net(2, fast());
  Message m;
  m.from = 0;
  m.to = 1;
  m.type = "ping";
  net.send(std::move(m));
  auto r = net.receive_request(1, 100ms);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->type, "ping");
  EXPECT_EQ(r->from, 0u);
}

TEST(SimNetwork, AssignsUniqueIds) {
  SimNetwork net(2, fast());
  Message a, b;
  a.from = b.from = 0;
  a.to = b.to = 1;
  const auto ia = net.send(std::move(a));
  const auto ib = net.send(std::move(b));
  EXPECT_NE(ia, ib);
}

TEST(SimNetwork, LatencyIsPaid) {
  NetworkOptions o;
  o.one_way_latency = std::chrono::microseconds(50000);  // 50 ms
  SimNetwork net(2, o);
  Message m;
  m.from = 0;
  m.to = 1;
  Stopwatch clock;
  net.send(std::move(m));
  auto r = net.receive_request(1, 500ms);
  ASSERT_TRUE(r.has_value());
  EXPECT_GE(clock.elapsed_us(), 45000);
}

TEST(SimNetwork, ReceiveTimesOutOnSilence) {
  SimNetwork net(2, fast());
  Stopwatch clock;
  auto r = net.receive_request(1, 50ms);
  EXPECT_FALSE(r.has_value());
  EXPECT_GE(clock.elapsed_us(), 45000);
}

TEST(SimNetwork, RepliesAndRequestsAreSegregated) {
  SimNetwork net(2, fast());
  Message req;
  req.from = 0;
  req.to = 1;
  req.type = "req";
  const auto corr = net.send(std::move(req));
  Message reply;
  reply.from = 1;
  reply.to = 0;
  reply.type = "resp";
  reply.correlation = corr;
  net.send(std::move(reply));

  // receive_request at site 0 must NOT surface the reply.
  EXPECT_FALSE(net.receive_request(0, 30ms).has_value());
  auto r = net.receive_reply(0, corr, 100ms);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->type, "resp");
}

TEST(SimNetwork, ReplyMatchingIsSelective) {
  SimNetwork net(2, fast());
  Message r1, r2;
  r1.from = r2.from = 1;
  r1.to = r2.to = 0;
  r1.correlation = 111;
  r1.type = "first";
  r2.correlation = 222;
  r2.type = "second";
  net.send(std::move(r1));
  net.send(std::move(r2));
  // Ask for the second correlation first; the other stays queued.
  auto b = net.receive_reply(0, 222, 100ms);
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->type, "second");
  auto a = net.receive_reply(0, 111, 100ms);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->type, "first");
}

TEST(SimNetwork, DownSiteDropsInbound) {
  SimNetwork net(2, fast());
  net.set_site_up(1, false);
  Message m;
  m.from = 0;
  m.to = 1;
  net.send(std::move(m));
  EXPECT_EQ(net.stats().dropped, 1u);
  net.set_site_up(1, true);
  EXPECT_FALSE(net.receive_request(1, 30ms).has_value());
}

TEST(SimNetwork, CrashLosesInFlightInbox) {
  NetworkOptions o;
  o.one_way_latency = std::chrono::microseconds(50000);
  SimNetwork net(2, o);
  Message m;
  m.from = 0;
  m.to = 1;
  net.send(std::move(m));  // in flight for 50 ms
  net.set_site_up(1, false);  // crash before delivery
  net.set_site_up(1, true);
  EXPECT_FALSE(net.receive_request(1, 100ms).has_value());
}

TEST(SimNetwork, DownLinkDropsBothDirections) {
  SimNetwork net(3, fast());
  net.set_link_up(0, 1, false);
  Message m;
  m.from = 0;
  m.to = 1;
  net.send(std::move(m));
  EXPECT_FALSE(net.receive_request(1, 30ms).has_value());
  Message back;
  back.from = 1;
  back.to = 0;
  net.send(std::move(back));
  EXPECT_FALSE(net.receive_request(0, 30ms).has_value());
  // Unrelated link unaffected.
  Message ok;
  ok.from = 0;
  ok.to = 2;
  net.send(std::move(ok));
  EXPECT_TRUE(net.receive_request(2, 100ms).has_value());
}

TEST(SimNetwork, StatsCountSentDeliveredDropped) {
  SimNetwork net(2, fast());
  Message a;
  a.from = 0;
  a.to = 1;
  net.send(std::move(a));
  (void)net.receive_request(1, 100ms);
  net.set_site_up(1, false);
  Message b;
  b.from = 0;
  b.to = 1;
  net.send(std::move(b));
  const NetStats s = net.stats();
  EXPECT_EQ(s.sent, 2u);
  EXPECT_EQ(s.delivered, 1u);
  EXPECT_EQ(s.dropped, 1u);
  net.reset_stats();
  EXPECT_EQ(net.stats().sent, 0u);
}

TEST(SimNetwork, DownSenderDropsOutbound) {
  // A crashed process cannot put messages on the wire: sends FROM a down
  // site are dropped (and accounted), not queued for later.
  SimNetwork net(2, fast());
  net.set_site_up(0, false);
  Message m;
  m.from = 0;
  m.to = 1;
  const auto id = net.send(std::move(m));
  EXPECT_GT(id, 0u);  // the id is still assigned
  const NetStats s = net.stats();
  EXPECT_EQ(s.sent, 1u);
  EXPECT_EQ(s.dropped, 1u);
  EXPECT_EQ(s.delivered, 0u);
  // The drop is permanent: recovery does not resurrect the message.
  net.set_site_up(0, true);
  EXPECT_FALSE(net.receive_request(1, 30ms).has_value());
}

TEST(SimNetwork, CrashDiscardsOnlyTheCrashedInbox) {
  NetworkOptions o;
  o.one_way_latency = std::chrono::microseconds(30000);
  SimNetwork net(3, o);
  Message to1, to2;
  to1.from = 0;
  to1.to = 1;
  to2.from = 0;
  to2.to = 2;
  net.send(std::move(to1));
  net.send(std::move(to2));
  net.set_site_up(1, false);  // crash while both are in flight
  net.set_site_up(1, true);
  // Site 1's in-flight message died with it; site 2's is untouched.
  EXPECT_FALSE(net.receive_request(1, 60ms).has_value());
  EXPECT_TRUE(net.receive_request(2, 200ms).has_value());
  const NetStats s = net.stats();
  EXPECT_EQ(s.sent, 2u);
  EXPECT_EQ(s.dropped, 0u);    // both were deliverable at send time
  EXPECT_EQ(s.delivered, 1u);  // only site 2's arrived
}

TEST(SimNetwork, LinkStateIsSymmetricAndIndependentOfSites) {
  SimNetwork net(3, fast());
  // Down and up are symmetric no matter which endpoint order is used.
  net.set_link_up(0, 1, false);
  EXPECT_FALSE(net.link_up(0, 1));
  EXPECT_FALSE(net.link_up(1, 0));
  net.set_link_up(1, 0, true);
  EXPECT_TRUE(net.link_up(0, 1));
  EXPECT_TRUE(net.link_up(1, 0));
  // A down link leaves both sites up, and drops are accounted per send.
  net.set_link_up(0, 1, false);
  EXPECT_TRUE(net.site_up(0));
  EXPECT_TRUE(net.site_up(1));
  Message m;
  m.from = 1;
  m.to = 0;
  net.send(std::move(m));
  EXPECT_EQ(net.stats().dropped, 1u);
  // Restoring the link restores delivery (but not the dropped message).
  net.set_link_up(0, 1, true);
  EXPECT_FALSE(net.receive_request(0, 30ms).has_value());
  Message again;
  again.from = 1;
  again.to = 0;
  net.send(std::move(again));
  EXPECT_TRUE(net.receive_request(0, 100ms).has_value());
}

TEST(SimNetwork, PayloadsTravelByAny) {
  SimNetwork net(2, fast());
  Message m;
  m.from = 0;
  m.to = 1;
  m.payload = std::make_pair(std::string("queue"), std::any(std::uint64_t{7}));
  net.send(std::move(m));
  auto r = net.receive_request(1, 100ms);
  ASSERT_TRUE(r.has_value());
  const auto* envelope =
      std::any_cast<std::pair<std::string, std::any>>(&r->payload);
  ASSERT_NE(envelope, nullptr);
  EXPECT_EQ(envelope->first, "queue");
  EXPECT_EQ(std::any_cast<std::uint64_t>(envelope->second), 7u);
}

}  // namespace
}  // namespace atp
