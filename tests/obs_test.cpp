// Observability layer tests: instruments, registry snapshots, exposition
// formats, the HTTP endpoint, the atp-top renderer, and the concurrency
// contract -- 8 writer threads hammering counters and epsilon budgets while
// a reader snapshots, asserting monotone counters and no torn budget pairs.
// (This suite carries the `tsan` label: the TSan CI job runs it with the
// sanitizer watching these exact interleavings.)
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "obs/export.h"
#include "obs/http_exporter.h"
#include "obs/instruments.h"
#include "obs/metrics_registry.h"
#include "obs/top_render.h"
#include "sched/database.h"
#include "txn/registry.h"

namespace atp::obs {
namespace {

TEST(Instruments, ShardedCounterSumsAcrossThreads) {
  ShardedCounter c;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(Instruments, GaugeSetAndAdd) {
  Gauge g;
  g.set(4.5);
  EXPECT_DOUBLE_EQ(g.value(), 4.5);
  g.add(0.5);
  EXPECT_DOUBLE_EQ(g.value(), 5.0);
}

TEST(Registry, InstrumentsAreStableAndNamed) {
  MetricsRegistry reg;
  ShardedCounter& a = reg.counter("x.count");
  ShardedCounter& b = reg.counter("x.count");
  EXPECT_EQ(&a, &b);  // same name -> same instrument
  a.add(3);
  reg.gauge("x.depth").set(7);
  reg.histogram("x.lat").record(10);
  reg.histogram("x.lat").record(20);

  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_NE(snap.find("x.count"), nullptr);
  EXPECT_DOUBLE_EQ(snap.find("x.count")->value, 3);
  EXPECT_DOUBLE_EQ(snap.find("x.depth")->value, 7);
  ASSERT_NE(snap.find("x.lat"), nullptr);
  EXPECT_EQ(snap.find("x.lat")->summary.count, 2u);
  EXPECT_DOUBLE_EQ(snap.find("x.lat")->summary.mean, 15);
}

TEST(Registry, SnapshotEpochsIncreaseAndSamplesAreSorted) {
  MetricsRegistry reg;
  reg.counter("b").add();
  reg.counter("a").add();
  const MetricsSnapshot s1 = reg.snapshot();
  const MetricsSnapshot s2 = reg.snapshot();
  EXPECT_LT(s1.epoch, s2.epoch);
  ASSERT_EQ(s2.samples.size(), 2u);
  EXPECT_LE(s2.samples[0].name, s2.samples[1].name);
}

TEST(Registry, CollectorsAppendAndUnregister) {
  MetricsRegistry reg;
  const auto id = reg.add_collector(
      [](SnapshotBuilder& b) { b.gauge("from.collector", 42); });
  EXPECT_NE(reg.snapshot().find("from.collector"), nullptr);
  reg.remove_collector(id);
  EXPECT_EQ(reg.snapshot().find("from.collector"), nullptr);
}

// The satellite concurrency contract: hammer counters and epsilon budget
// pairs from 8 threads while snapshotting.  Counters must be monotone
// across snapshots, and every (imported, limit) pair must be consistent --
// a charge is all-or-nothing, so imported can never exceed the limit.
TEST(Registry, ConcurrentHammerMonotoneCountersNoTornBudgets) {
  constexpr int kWriters = 8;
  constexpr int kSnapshots = 200;
  constexpr Value kLimit = 1e9;

  MetricsRegistry reg;
  EtRegistry ets;
  const TxnId q = ets.begin(TxnKind::Query, EpsilonSpec::importing(kLimit));
  const TxnId u = ets.begin(TxnKind::Update, EpsilonSpec::exporting(kLimit));

  // The EtRegistry collector: budget pairs captured under the seqlock.
  reg.add_collector([&](SnapshotBuilder& b) {
    for (const EtRegistry::Entry& e : ets.snapshot_all()) {
      const std::string p = "et." + std::to_string(e.id) + ".";
      b.gauge(p + "imported", double(e.imported));
      b.gauge(p + "exported", double(e.exported));
      b.gauge(p + "import_limit", double(e.spec.import_limit));
      b.gauge(p + "export_limit", double(e.spec.export_limit));
    }
  });

  // Hot-path idiom: hold the instrument reference, don't re-look it up.
  ShardedCounter& ops = reg.counter("hammer.ops");

  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        ops.add();
        (void)ets.try_charge_pair(q, u, 1.0);
      }
    });
  }

  // On a single-CPU box the main thread can finish the whole snapshot loop
  // before any writer is ever scheduled; wait for the first add so the
  // final nonzero assertion (and the monotonicity walk) mean something.
  while (ops.value() == 0) std::this_thread::yield();

  double last_ops = -1;
  std::uint64_t last_epoch = 0;
  for (int i = 0; i < kSnapshots; ++i) {
    const MetricsSnapshot snap = reg.snapshot();
    EXPECT_GT(snap.epoch, last_epoch);
    last_epoch = snap.epoch;

    const Sample* ops = snap.find("hammer.ops");
    ASSERT_NE(ops, nullptr);
    EXPECT_GE(ops->value, last_ops) << "counter went backwards";
    last_ops = ops->value;

    // Torn-pair check: the query's import side.  imported and the limit are
    // read inside one seqlock window; a torn read could see imported beyond
    // the limit mid-charge.
    const std::string qp = "et." + std::to_string(q) + ".";
    const Sample* imported = snap.find(qp + "imported");
    const Sample* limit = snap.find(qp + "import_limit");
    ASSERT_NE(imported, nullptr);
    ASSERT_NE(limit, nullptr);
    EXPECT_LE(imported->value, limit->value) << "torn epsilon-budget pair";
    // And the pairing invariant: this workload charges q and u in lockstep.
    const std::string up = "et." + std::to_string(u) + ".";
    const Sample* exported = snap.find(up + "exported");
    ASSERT_NE(exported, nullptr);
    EXPECT_DOUBLE_EQ(imported->value, exported->value)
        << "import/export charged all-or-nothing must stay paired";
  }
  stop.store(true);
  for (auto& t : writers) t.join();
  EXPECT_GT(reg.snapshot().find("hammer.ops")->value, 0);
}

TEST(Export, JsonRoundTripsThroughTopParser) {
  MetricsRegistry reg;
  reg.counter("db.commits").add(42);
  reg.gauge("exec.queue_depth").set(5);
  for (int i = 0; i < 10; ++i) reg.histogram("exec.piece_us").record(i * 10.0);
  const MetricsSnapshot snap = reg.snapshot();

  const std::string json = snapshot_to_json(snap);
  MetricsSnapshot parsed;
  ASSERT_TRUE(parse_snapshot_json(json, &parsed));
  EXPECT_EQ(parsed.epoch, snap.epoch);
  EXPECT_EQ(parsed.samples.size(), snap.samples.size());
  EXPECT_DOUBLE_EQ(parsed.find("db.commits")->value, 42);
  EXPECT_DOUBLE_EQ(parsed.find("exec.queue_depth")->value, 5);
  const Sample* h = parsed.find("exec.piece_us");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->summary.count, 10u);
  EXPECT_DOUBLE_EQ(h->summary.max, 90);
}

TEST(Export, PrometheusShapes) {
  MetricsRegistry reg;
  reg.counter("db.commits").add(7);
  reg.histogram("lock.stripe.0.acquire_us").record(3);
  const std::string text = snapshot_to_prometheus(reg.snapshot());
  EXPECT_NE(text.find("# TYPE atp_db_commits counter"), std::string::npos);
  EXPECT_NE(text.find("atp_db_commits 7"), std::string::npos);
  EXPECT_NE(text.find("atp_lock_stripe_0_acquire_us_count 1"),
            std::string::npos);
  EXPECT_NE(text.find("atp_lock_stripe_0_acquire_us_p95 3"),
            std::string::npos);
}

TEST(Export, ParserRejectsGarbage) {
  MetricsSnapshot snap;
  EXPECT_FALSE(parse_snapshot_json("not json at all", &snap));
  EXPECT_FALSE(parse_snapshot_json("{\"epoch\": 1}", &snap));
}

TEST(HttpExporter, ServesPrometheusAndJson) {
  MetricsRegistry reg;
  reg.counter("db.commits").add(9);
  ObsServer server(&reg, 0);  // port 0: kernel-assigned
  ASSERT_TRUE(server.ok());
  ASSERT_NE(server.port(), 0);

  std::string body;
  ASSERT_TRUE(http_get("127.0.0.1", server.port(), "/metrics", &body));
  EXPECT_NE(body.find("atp_db_commits 9"), std::string::npos);

  ASSERT_TRUE(http_get("127.0.0.1", server.port(), "/snapshot.json", &body));
  MetricsSnapshot parsed;
  ASSERT_TRUE(parse_snapshot_json(body, &parsed));
  EXPECT_DOUBLE_EQ(parsed.find("db.commits")->value, 9);

  ASSERT_TRUE(http_get("127.0.0.1", server.port(), "/healthz", &body));
  EXPECT_EQ(body, "ok\n");
}

TEST(HttpExporter, RegistrySwapAndDump) {
  MetricsRegistry a, b;
  a.counter("which").add(1);
  b.counter("which").add(2);
  ObsServer server(&a, 0);
  ASSERT_TRUE(server.ok());
  std::string body;
  ASSERT_TRUE(http_get("127.0.0.1", server.port(), "/snapshot.json", &body));
  MetricsSnapshot snap;
  ASSERT_TRUE(parse_snapshot_json(body, &snap));
  EXPECT_DOUBLE_EQ(snap.find("which")->value, 1);

  server.set_registry(&b);
  ASSERT_TRUE(http_get("127.0.0.1", server.port(), "/snapshot.json", &body));
  ASSERT_TRUE(parse_snapshot_json(body, &snap));
  EXPECT_DOUBLE_EQ(snap.find("which")->value, 2);

  const std::string path = ::testing::TempDir() + "/obs_dump_test.json";
  ASSERT_TRUE(server.dump_json(path));
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::fclose(f);
  std::remove(path.c_str());
}

// End-to-end: a Database configured with a registry publishes epsilon
// telemetry, the stripe heatmap and commit counters -- the samples atp-top
// renders.
TEST(DatabaseObs, PublishesEpsAndLockSamples) {
  MetricsRegistry reg;
  DatabaseOptions o;
  o.scheduler = SchedulerKind::DC;
  o.metrics = &reg;
  Database db(o);
  db.load(1, 100);

  // An update committing past a live query's snapshot: the query's fresh
  // read charges import fuzziness from the version distance.
  Txn q = db.begin(TxnKind::Query, EpsilonSpec::importing(1000));
  Txn u = db.begin(TxnKind::Update, EpsilonSpec::exporting(1000));
  ASSERT_TRUE(u.write(1, 140).ok());
  ASSERT_TRUE(u.commit().ok());
  ASSERT_TRUE(q.read(1).ok());
  ASSERT_TRUE(q.commit().ok());

  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_NE(snap.find("db.commits"), nullptr);
  EXPECT_DOUBLE_EQ(snap.find("db.commits")->value, 2);
  ASSERT_NE(snap.find("eps.charges_ok"), nullptr);
  EXPECT_GE(snap.find("eps.charges_ok")->value, 1);
  ASSERT_NE(snap.find("eps.retired.query.used"), nullptr);
  EXPECT_GT(snap.find("eps.retired.query.used")->value, 0)
      << "the query imported fuzziness; retirement must roll it up";
  ASSERT_NE(snap.find("lock.stripes"), nullptr);
  const auto stripes = std::size_t(snap.find("lock.stripes")->value);
  EXPECT_EQ(stripes, LockManager::kDefaultStripes);
  double total_acquires = 0;
  for (std::size_t i = 0; i < stripes; ++i) {
    const Sample* s =
        snap.find("lock.stripe." + std::to_string(i) + ".acquires");
    ASSERT_NE(s, nullptr);
    total_acquires += s->value;
  }
  EXPECT_GT(total_acquires, 0);
}

TEST(TopRender, ShowsUtilizationAndHeatmap) {
  MetricsRegistry reg;
  DatabaseOptions o;
  o.scheduler = SchedulerKind::DC;
  o.metrics = &reg;
  Database db(o);
  db.load(1, 100);
  Txn q = db.begin(TxnKind::Query, EpsilonSpec::importing(100));
  Txn u = db.begin(TxnKind::Update, EpsilonSpec::exporting(100));
  ASSERT_TRUE(u.write(1, 150).ok());
  ASSERT_TRUE(u.commit().ok());
  ASSERT_TRUE(q.read(1).ok());  // 50 past the snapshot: imports 50 of 100
  ASSERT_TRUE(q.commit().ok());

  const MetricsSnapshot snap = reg.snapshot();
  const std::string frame = render_top(snap, nullptr, {});
  EXPECT_NE(frame.find("epsilon budgets"), std::string::npos);
  EXPECT_NE(frame.find("query  import"), std::string::npos);
  EXPECT_NE(frame.find("lock stripes"), std::string::npos);
  // The query imported 50 of 100: the utilization bar must be nonzero.
  EXPECT_NE(frame.find("50.0%"), std::string::npos) << frame;
}

TEST(TopRender, RatesComeFromDeltas) {
  MetricsSnapshot prev, now;
  prev.epoch = 1;
  prev.steady_us = 0;
  prev.samples.push_back({"db.commits", Sample::Kind::Counter, 100, {}});
  now.epoch = 2;
  now.steady_us = 2'000'000;  // 2 seconds later
  now.samples.push_back({"db.commits", Sample::Kind::Counter, 300, {}});
  const std::string frame = render_top(now, &prev, {});
  // (300 - 100) commits / 2s = 100/s.
  EXPECT_NE(frame.find("100"), std::string::npos);
  EXPECT_NE(frame.find("/s"), std::string::npos);
}

TEST(TopRender, ServerPanelAppearsWithPerClassAdmission) {
  MetricsSnapshot snap;
  snap.epoch = 1;
  // Samples arrive name-sorted from the registry; keep that invariant.
  snap.samples.push_back(
      {"net.sim.dropped", Sample::Kind::Counter, 1, {}});
  snap.samples.push_back(
      {"net.sim.delivered", Sample::Kind::Counter, 40, {}});
  snap.samples.push_back({"net.sim.sent", Sample::Kind::Counter, 41, {}});
  snap.samples.push_back(
      {"srv.admission.granted.gold", Sample::Kind::Counter, 12, {}});
  snap.samples.push_back(
      {"srv.admission.rejected.gold", Sample::Kind::Counter, 3, {}});
  snap.samples.push_back(
      {"srv.sessions.accepted", Sample::Kind::Counter, 5, {}});
  snap.samples.push_back(
      {"srv.sessions.active", Sample::Kind::Gauge, 2, {}});
  const std::string frame = render_top(snap, nullptr, {});
  EXPECT_NE(frame.find("server front-end"), std::string::npos);
  EXPECT_NE(frame.find("admission gold"), std::string::npos);
  EXPECT_NE(frame.find("simnet sent/delivered/dropped"), std::string::npos);
  // Without srv.* samples the panel stays out of the frame.
  MetricsSnapshot bare;
  bare.epoch = 1;
  EXPECT_EQ(render_top(bare, nullptr, {}).find("server front-end"),
            std::string::npos);
}

TEST(TopRender, ServerPanelShowsPerClassLatencyAndSlowRequests) {
  MetricsSnapshot snap;
  snap.epoch = 1;
  // Samples arrive name-sorted from the registry; keep that invariant.
  Sample lat{"srv.request_latency.gold", Sample::Kind::Histogram, 0, {}};
  lat.summary.count = 4;
  lat.summary.mean = 150;
  lat.summary.p50 = 120;
  lat.summary.p99 = 400;
  Sample empty{"srv.request_latency.silver", Sample::Kind::Histogram, 0, {}};
  snap.samples.push_back(lat);
  snap.samples.push_back(empty);
  snap.samples.push_back(
      {"srv.sessions.accepted", Sample::Kind::Counter, 5, {}});
  snap.samples.push_back({"srv.slow_requests", Sample::Kind::Counter, 2, {}});
  const std::string frame = render_top(snap, nullptr, {});
  EXPECT_NE(frame.find("latency gold: p50/p99 120/400us"), std::string::npos)
      << frame;
  // Unused classes stay out; zero-count histograms carry no signal.
  EXPECT_EQ(frame.find("latency silver"), std::string::npos);
  EXPECT_NE(frame.find("slow requests 2"), std::string::npos);
}

TEST(TopRender, OnlineCertificationPanelRendersHealthAndViolations) {
  MetricsSnapshot snap;
  snap.epoch = 1;
  snap.samples.push_back(
      {"audit.online.degraded", Sample::Kind::Gauge, 0, {}});
  snap.samples.push_back(
      {"audit.online.dropped_events", Sample::Kind::Counter, 0, {}});
  snap.samples.push_back({"audit.online.edges", Sample::Kind::Counter, 7, {}});
  snap.samples.push_back(
      {"audit.online.esr_violations", Sample::Kind::Counter, 0, {}});
  snap.samples.push_back(
      {"audit.online.events_processed", Sample::Kind::Counter, 900, {}});
  snap.samples.push_back(
      {"audit.online.live_txns", Sample::Kind::Gauge, 3, {}});
  snap.samples.push_back(
      {"audit.online.retired_nodes", Sample::Kind::Counter, 120, {}});
  snap.samples.push_back(
      {"audit.online.sr_violations", Sample::Kind::Counter, 0, {}});
  snap.samples.push_back(
      {"audit.online.violations", Sample::Kind::Counter, 0, {}});
  snap.samples.push_back(
      {"audit.online.window_lag_us", Sample::Kind::Gauge, 850, {}});
  snap.samples.push_back(
      {"audit.online.window_nodes", Sample::Kind::Gauge, 12, {}});
  std::string frame = render_top(snap, nullptr, {});
  EXPECT_NE(frame.find("online certification  ok"), std::string::npos)
      << frame;
  EXPECT_NE(frame.find("window 12 nodes  live 3"), std::string::npos);
  EXPECT_NE(frame.find("lag 850us"), std::string::npos);

  // A violation flips the header to the alarm form.
  for (Sample& s : snap.samples) {
    if (s.name == "audit.online.violations") s.value = 2;
    if (s.name == "audit.online.sr_violations") s.value = 2;
  }
  frame = render_top(snap, nullptr, {});
  EXPECT_NE(frame.find("!! 2 VIOLATIONS"), std::string::npos) << frame;
  EXPECT_NE(frame.find("violations sr/esr 2/0"), std::string::npos);

  // Dropped events without violations: degraded confidence, not "ok".
  for (Sample& s : snap.samples) {
    if (s.name == "audit.online.violations") s.value = 0;
    if (s.name == "audit.online.sr_violations") s.value = 0;
    if (s.name == "audit.online.degraded") s.value = 1;
  }
  frame = render_top(snap, nullptr, {});
  EXPECT_NE(frame.find("DEGRADED (events dropped)"), std::string::npos);

  // Without audit.online.* samples the panel stays out of the frame.
  MetricsSnapshot bare;
  bare.epoch = 1;
  EXPECT_EQ(render_top(bare, nullptr, {}).find("online certification"),
            std::string::npos);
}

}  // namespace
}  // namespace atp::obs
