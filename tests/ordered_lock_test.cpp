// Enforcement-layer tests for the ranked mutex wrappers
// (common/ordered_lock.h): in-order acquisition, detected inversions with
// captured reports, shared-vs-exclusive ranks, condvar wait re-acquisition,
// and a two-thread cycle whose witness names both acquisition sites.
//
// The tests install a violation handler, so a detected inversion throws
// LockOrderViolation instead of aborting -- which also means a would-be
// deadlock never actually blocks the suite.
#include <gtest/gtest.h>

#include <chrono>
#include <mutex>
#include <shared_mutex>
#include <thread>
#include <type_traits>

#include "common/lock_ranks.h"
#include "common/ordered_lock.h"

using atp::LockRank;

#if defined(ATP_LOCK_CHECK)

using namespace atp::lockcheck;

namespace {

ViolationReport g_last;
bool g_fired = false;

void capture(const ViolationReport& r) {
  g_last = r;
  g_fired = true;
}

/// Installs the capturing handler and wipes the edge graph for the test.
struct CheckerFixture {
  CheckerFixture() {
    prev = set_violation_handler(&capture);
    g_fired = false;
    reset_for_testing();
  }
  ~CheckerFixture() {
    set_violation_handler(prev);
    reset_for_testing();
  }
  ViolationHandler prev;
};

}  // namespace

TEST(OrderedLock, InOrderAcquisitionIsCleanAndObserved) {
  CheckerFixture fix;
  atp::OrderedMutex<LockRank::kLockStripe> stripe;
  atp::OrderedMutex<LockRank::kWaitsFor> waits;
  {
    std::lock_guard outer(stripe);
    std::lock_guard inner(waits);
    EXPECT_EQ(held_count(), 2u);
  }
  EXPECT_EQ(held_count(), 0u);
  EXPECT_FALSE(g_fired);

  bool found = false;
  for (const Edge& e : observed_edges()) {
    if (e.from == LockRank::kLockStripe && e.to == LockRank::kWaitsFor) {
      found = true;
    }
  }
  EXPECT_TRUE(found) << "legal nesting must still feed the order graph";
  EXPECT_TRUE(find_cycle().empty());
}

TEST(OrderedLock, RankInversionIsReportedNotJustAborted) {
  CheckerFixture fix;
  atp::OrderedMutex<LockRank::kWal> wal;
  atp::OrderedMutex<LockRank::kLockStripe> stripe;
  std::lock_guard held(wal);
  EXPECT_THROW(stripe.lock(), LockOrderViolation);
  ASSERT_TRUE(g_fired);
  EXPECT_EQ(g_last.attempted, LockRank::kLockStripe);
  ASSERT_EQ(g_last.held.size(), 1u);
  EXPECT_EQ(g_last.held[0].rank, LockRank::kWal);
  const std::string report = g_last.to_string();
  EXPECT_NE(report.find("kLockStripe"), std::string::npos) << report;
  EXPECT_NE(report.find("kWal"), std::string::npos) << report;
  // The acquisition was abandoned: only the wal lock is still held.
  EXPECT_EQ(held_count(), 1u);
}

TEST(OrderedLock, SameRankReacquisitionIsAViolation) {
  CheckerFixture fix;
  atp::OrderedMutex<LockRank::kSession> a;
  atp::OrderedMutex<LockRank::kSession> b;
  std::lock_guard held(a);
  // Two locks of equal rank can never nest (the order must be *strictly*
  // increasing), which is also what makes self-deadlock impossible.
  EXPECT_THROW(b.lock(), LockOrderViolation);
}

TEST(OrderedLock, SharedAndExclusiveShareOneRank) {
  CheckerFixture fix;
  atp::OrderedSharedMutex<LockRank::kStoreMap> map;
  atp::OrderedMutex<LockRank::kStoreStripe> cell;
  {
    // The Store idiom: shared map lookup, then the cell stripe.
    std::shared_lock lookup(map);
    std::lock_guard mutate(cell);
    EXPECT_EQ(held_count(), 2u);
  }
  EXPECT_FALSE(g_fired);

  // A shared acquisition below a held higher rank is still an inversion.
  atp::OrderedSharedMutex<LockRank::kTxnStruct> structure;
  atp::OrderedMutex<LockRank::kTxnCharge> charge;
  std::lock_guard held(charge);
  EXPECT_THROW(structure.lock_shared(), LockOrderViolation);
  ASSERT_TRUE(g_fired);
  EXPECT_TRUE(g_last.attempted_shared);
  EXPECT_EQ(g_last.attempted, LockRank::kTxnStruct);
}

TEST(OrderedLock, CondvarWaitReacquisitionKeepsBookkeeping) {
  CheckerFixture fix;
  atp::OrderedMutex<LockRank::kServerQueue> mu;
  atp::OrderedCondVar cv;
  bool ready = false;

  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    {
      std::lock_guard lock(mu);
      ready = true;
    }
    cv.notify_one();
  });
  {
    std::unique_lock lock(mu);
    cv.wait(lock, [&] {
      // The predicate runs with the lock held (before and after the blocking
      // unlock/relock round trips).
      EXPECT_EQ(held_count(), 1u);
      return ready;
    });
    EXPECT_EQ(held_count(), 1u);
    // The re-acquired lock still participates in ordering checks.
    atp::OrderedMutex<LockRank::kWal> inner;
    std::lock_guard nested(inner);
    EXPECT_EQ(held_count(), 2u);
  }
  producer.join();
  EXPECT_EQ(held_count(), 0u);
  EXPECT_FALSE(g_fired);
}

TEST(OrderedLock, TwoThreadCycleWitnessNamesBothSites) {
  CheckerFixture fix;
  atp::OrderedMutex<LockRank::kWal> wal;
  atp::OrderedMutex<LockRank::kHistory> history;

  // Thread 1 nests legally (wal -> history), feeding that edge's sites.
  // Direct lock() calls so the recorded sites are these very lines.
  std::thread legal([&] {
    wal.lock();
    history.lock();
    history.unlock();
    wal.unlock();
  });
  legal.join();

  // Thread 2 nests the other way; the attempt is detected, recorded, and
  // abandoned -- so the test never actually deadlocks.
  std::thread inverted([&] {
    history.lock();
    try {
      wal.lock();
      wal.unlock();
    } catch (const LockOrderViolation&) {
    }
    history.unlock();
  });
  inverted.join();

  const std::vector<Edge> cycle = find_cycle();
  ASSERT_EQ(cycle.size(), 2u) << cycle_witness(cycle);
  const std::string witness = cycle_witness(cycle);
  EXPECT_NE(witness.find("kWal -> kHistory"), std::string::npos) << witness;
  EXPECT_NE(witness.find("kHistory -> kWal"), std::string::npos) << witness;
  // Both threads' acquisition sites are named, i.e. this file four times.
  std::size_t mentions = 0, pos = 0;
  while ((pos = witness.find("ordered_lock_test.cpp", pos)) !=
         std::string::npos) {
    ++mentions;
    pos += 1;
  }
  EXPECT_EQ(mentions, 4u) << witness;
}

#else  // !ATP_LOCK_CHECK

TEST(OrderedLock, ReleaseBuildAliasesAreZeroOverhead) {
  static_assert(
      std::is_same_v<atp::OrderedMutex<LockRank::kWal>, std::mutex>);
  static_assert(std::is_same_v<atp::OrderedSharedMutex<LockRank::kStoreMap>,
                               std::shared_mutex>);
  static_assert(
      std::is_same_v<atp::OrderedCondVar, std::condition_variable>);
}

#endif  // ATP_LOCK_CHECK
