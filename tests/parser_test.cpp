// Job-stream text parser (the chopper tool's input format).
#include <gtest/gtest.h>

#include "chop/analyzer.h"
#include "chop/parser.h"

namespace atp {
namespace {

constexpr const char* kBanking = R"(
# the paper's running example
txn transfer update eps=500
  add checking bound=100
  add savings bound=100
txn audit query eps=250 whole
  read checking
  read savings
)";

TEST(Parser, ParsesTheBankingExample) {
  auto r = parse_job_stream(kBanking);
  ASSERT_TRUE(r.ok()) << r.status().to_string();
  const auto& s = r.value();
  ASSERT_EQ(s.programs.size(), 2u);
  EXPECT_EQ(s.item_names.size(), 2u);

  const TxnProgram& transfer = s.programs[0];
  EXPECT_EQ(transfer.name, "transfer");
  EXPECT_EQ(transfer.kind, TxnKind::Update);
  EXPECT_EQ(transfer.epsilon_limit, 500);
  EXPECT_TRUE(transfer.choppable);
  ASSERT_EQ(transfer.ops.size(), 2u);
  EXPECT_EQ(transfer.ops[0].type, AccessType::Add);
  EXPECT_EQ(transfer.ops[0].bound, 100);

  const TxnProgram& audit = s.programs[1];
  EXPECT_EQ(audit.kind, TxnKind::Query);
  EXPECT_FALSE(audit.choppable);
  EXPECT_EQ(audit.ops[0].type, AccessType::Read);
  // Items interned consistently across transactions.
  EXPECT_EQ(transfer.ops[0].item, audit.ops[0].item);
  EXPECT_EQ(transfer.ops[1].item, audit.ops[1].item);
}

TEST(Parser, ParsedStreamFeedsTheChopper) {
  auto r = parse_job_stream(kBanking);
  ASSERT_TRUE(r.ok());
  const Chopping esr = finest_esr_chopping(r.value().programs);
  EXPECT_TRUE(validate_esr_chopping(r.value().programs, esr).ok());
  EXPECT_EQ(esr.piece_count(0), 2u);  // transfer chops (200 <= 500)
  EXPECT_EQ(esr.piece_count(1), 1u);  // audit marked whole
}

TEST(Parser, RollbackDirective) {
  auto r = parse_job_stream(
      "txn t update eps=10\n  add x bound=1\n  rollback\n  add y bound=1\n");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value().programs[0].rollback_after.size(), 1u);
  EXPECT_EQ(r.value().programs[0].rollback_after[0], 0u);
}

TEST(Parser, RollbackAfterOption) {
  auto r = parse_job_stream(
      "txn t update eps=10 rollback_after=1\n  add x bound=1\n  add y "
      "bound=1\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().programs[0].rollback_after[0], 1u);
}

TEST(Parser, UnknownBoundDefaultsToInfinity) {
  auto r = parse_job_stream("txn t update eps=10\n  add x\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().programs[0].ops[0].bound, kUnknownBound);
}

TEST(Parser, WriteOpParses) {
  auto r = parse_job_stream("txn t update eps=10\n  write x bound=5\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().programs[0].ops[0].type, AccessType::Write);
}

TEST(Parser, CommentsAndBlankLinesIgnored) {
  auto r = parse_job_stream(
      "# header\n\ntxn t query eps=1  # trailing\n  read x\n\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().programs[0].ops.size(), 1u);
}

TEST(Parser, ErrorsCarryLineNumbers) {
  auto r = parse_job_stream("txn t update eps=1\n  frobnicate x\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line 2"), std::string::npos);
}

TEST(Parser, OpBeforeTxnIsAnError) {
  auto r = parse_job_stream("read x\n");
  EXPECT_FALSE(r.ok());
}

TEST(Parser, BadKindIsAnError) {
  auto r = parse_job_stream("txn t sideways eps=1\n  read x\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("sideways"), std::string::npos);
}

TEST(Parser, RollbackIndexOutOfRangeIsAnError) {
  auto r = parse_job_stream("txn t update eps=1 rollback_after=5\n  read x\n");
  EXPECT_FALSE(r.ok());
}

TEST(Parser, EmptyInputIsAnError) {
  EXPECT_FALSE(parse_job_stream("# nothing\n").ok());
}

}  // namespace
}  // namespace atp
