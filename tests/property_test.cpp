// Property-based suites:
//   * the block-decomposition SC-cycle detector against a brute-force
//     enumerate-all-simple-cycles oracle on random graphs;
//   * finest-chopping searches always return validating choppings, and
//     coarsening a valid chopping never invalidates it;
//   * the engine invariants (money conservation, epsilon bounds, no budget
//     violations) under randomized workloads across methods and seeds.
#include <gtest/gtest.h>

#include <functional>
#include <set>
#include <tuple>
#include <vector>

#include "chop/analyzer.h"
#include "chop/graph.h"
#include "common/rng.h"
#include "engine/executor.h"
#include "workload/banking.h"

namespace atp {
namespace {

// ---------------------------------------------------------------------------
// Brute force: does a simple cycle with >= 1 S edge and >= 1 C edge exist?
// DFS over simple paths (fine for tiny graphs).
bool brute_force_sc_cycle(std::size_t n, const std::vector<GraphEdge>& edges) {
  std::vector<std::vector<std::pair<std::size_t, std::size_t>>> adj(n);
  for (std::size_t e = 0; e < edges.size(); ++e) {
    adj[edges[e].u].emplace_back(edges[e].v, e);
    adj[edges[e].v].emplace_back(edges[e].u, e);
  }
  std::vector<bool> on_path(n, false);
  std::vector<bool> edge_used(edges.size(), false);
  bool found = false;

  std::function<void(std::size_t, std::size_t, int, int)> dfs =
      [&](std::size_t start, std::size_t u, int s_count, int c_count) {
        if (found) return;
        for (const auto& [w, e] : adj[u]) {
          if (edge_used[e]) continue;
          const int ns = s_count + (edges[e].kind == EdgeKind::S);
          const int nc = c_count + (edges[e].kind == EdgeKind::C);
          if (w == start) {
            if (ns >= 1 && nc >= 1) {
              found = true;
              return;
            }
            continue;
          }
          if (on_path[w]) continue;
          on_path[w] = true;
          edge_used[e] = true;
          dfs(start, w, ns, nc);
          edge_used[e] = false;
          on_path[w] = false;
          if (found) return;
        }
      };

  for (std::size_t v = 0; v < n && !found; ++v) {
    on_path[v] = true;
    dfs(v, v, 0, 0);
    on_path[v] = false;
  }
  return found;
}

class ScCycleOracleTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ScCycleOracleTest, BlockDetectorMatchesBruteForce) {
  Rng rng(GetParam());
  for (int round = 0; round < 60; ++round) {
    // Random graph: up to 4 transactions, up to 3 pieces each.
    const std::size_t n_txn = 1 + rng.uniform(4);
    PieceGraph g;
    std::vector<std::vector<std::size_t>> by_txn(n_txn);
    for (std::size_t t = 0; t < n_txn; ++t) {
      const std::size_t pieces = 1 + rng.uniform(3);
      for (std::size_t p = 0; p < pieces; ++p) {
        by_txn[t].push_back(g.add_piece(t, rng.chance(0.7)));
      }
    }
    // S cliques.
    for (const auto& ps : by_txn) {
      for (std::size_t i = 0; i < ps.size(); ++i) {
        for (std::size_t j = i + 1; j < ps.size(); ++j) {
          g.add_s_edge(ps[i], ps[j]);
        }
      }
    }
    // Random C edges across transactions (dedup).
    std::set<std::pair<std::size_t, std::size_t>> used;
    const std::size_t tries = rng.uniform(8);
    for (std::size_t k = 0; k < tries; ++k) {
      const std::size_t u = rng.uniform(g.vertex_count());
      const std::size_t v = rng.uniform(g.vertex_count());
      if (u == v) continue;
      if (g.vertices()[u].txn == g.vertices()[v].txn) continue;
      auto key = std::minmax(u, v);
      if (!used.insert({key.first, key.second}).second) continue;
      g.add_c_edge(u, v, 1);
    }
    g.finalize();
    EXPECT_EQ(g.has_sc_cycle(),
              brute_force_sc_cycle(g.vertex_count(), g.edges()))
        << "round " << round << " seed " << GetParam() << "\n"
        << g.to_dot();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScCycleOracleTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ---------------------------------------------------------------------------
// Random job streams: the finest searches always return valid choppings and
// merging any valid chopping further keeps it valid.

std::vector<TxnProgram> random_stream(Rng& rng) {
  const std::size_t n_items = 2 + rng.uniform(4);
  const std::size_t n_txn = 2 + rng.uniform(4);
  std::vector<TxnProgram> programs;
  for (std::size_t t = 0; t < n_txn; ++t) {
    const bool update = rng.chance(0.6);
    ProgramBuilder pb("t" + std::to_string(t),
                      update ? TxnKind::Update : TxnKind::Query);
    const std::size_t n_ops = 1 + rng.uniform(4);
    for (std::size_t i = 0; i < n_ops; ++i) {
      const Key item = 1 + rng.uniform(n_items);
      if (!update || rng.chance(0.3)) {
        pb.read(item);
      } else if (rng.chance(0.8)) {
        pb.add(item, 1, 1 + double(rng.uniform(50)));
      } else {
        pb.write(item, 1, 1 + double(rng.uniform(50)));
      }
    }
    if (update && rng.chance(0.3)) pb.rollback_point();
    pb.epsilon(double(rng.uniform(300)));
    programs.push_back(pb.build());
  }
  return programs;
}

class FinestChoppingProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(FinestChoppingProperty, SearchesReturnValidChoppings) {
  Rng rng(GetParam() * 7919);
  for (int round = 0; round < 40; ++round) {
    const auto programs = random_stream(rng);
    const Chopping sr = finest_sr_chopping(programs);
    EXPECT_TRUE(validate_sr_chopping(programs, sr).ok())
        << "SR round " << round;
    const Chopping esr = finest_esr_chopping(programs);
    EXPECT_TRUE(validate_esr_chopping(programs, esr).ok())
        << "ESR round " << round;
    // ESR is never coarser than SR overall.
    EXPECT_GE(esr.total_pieces(), sr.total_pieces());
  }
}

TEST_P(FinestChoppingProperty, CoarseningPreservesSrValidity) {
  Rng rng(GetParam() * 104729);
  for (int round = 0; round < 25; ++round) {
    const auto programs = random_stream(rng);
    Chopping c = finest_sr_chopping(programs);
    ASSERT_TRUE(validate_sr_chopping(programs, c).ok());
    // Merge random adjacent pieces a few times; validity must persist.
    for (int m = 0; m < 4; ++m) {
      const std::size_t t = rng.uniform(programs.size());
      if (c.piece_count(t) < 2) continue;
      const std::size_t p = rng.uniform(c.piece_count(t) - 1);
      c.merge(t, p, p + 1);
      EXPECT_TRUE(validate_sr_chopping(programs, c).ok())
          << "round " << round << " merge " << m;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FinestChoppingProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

// ---------------------------------------------------------------------------
// Engine invariants across (method, seed, skew).

using EngineParam = std::tuple<int /*method*/, std::uint64_t /*seed*/,
                               double /*zipf theta*/>;

class EngineInvariantTest : public ::testing::TestWithParam<EngineParam> {};

MethodConfig method_by_index(int i) {
  switch (i) {
    case 0: return MethodConfig::baseline_sr();
    case 1: return MethodConfig::baseline_dc();
    case 2: return MethodConfig::sr_chop_cc();
    case 3: return MethodConfig::method1(DistPolicy::Dynamic);
    case 4: return MethodConfig::method2();
    default: return MethodConfig::method3(DistPolicy::Dynamic);
  }
}

TEST_P(EngineInvariantTest, ConservationEpsilonAndTermination) {
  const auto [method_index, seed, theta] = GetParam();
  const MethodConfig method = method_by_index(method_index);

  BankingConfig cfg;
  cfg.branches = 2;
  cfg.accounts_per_branch = 12;
  cfg.max_transfer = 40;
  cfg.zipf_theta = theta;
  cfg.branch_audit_fraction = 0.15;
  cfg.global_audit_fraction = 0.10;
  cfg.rollback_probability = 0.05;
  cfg.update_epsilon = 800;
  cfg.query_epsilon = 1200;
  const Workload w = make_banking(cfg, 80, seed);

  auto plan = ExecutionPlan::build(w.types, method);
  ASSERT_TRUE(plan.ok()) << plan.status().to_string();
  Database db(Executor::database_options(method));
  w.load_into(db);
  ExecutorOptions opts;
  opts.workers = 4;
  opts.seed = seed ^ 0xabcdef;
  const ExecutorReport report = Executor::run(db, plan.value(), w.instances,
                                              opts);

  // Termination: every instance either committed or took its rollback.
  EXPECT_EQ(report.committed + report.rolled_back, w.instances.size());
  // Condition 2 at runtime: no committed txn exceeded Limit_t.
  EXPECT_EQ(report.budget_violations, 0u);
  // Global audits' realized error within the eps-spec.
  EXPECT_LE(report.query_error.max, cfg.query_epsilon + 1e-9);
  // Money conservation at quiescence.
  Value sum = 0;
  for (const auto& [k, v] : db.store().snapshot_committed()) sum += v;
  EXPECT_EQ(sum, w.total_money);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EngineInvariantTest,
    ::testing::Combine(::testing::Values(0, 1, 2, 3, 4, 5),
                       ::testing::Values(11u, 23u),
                       ::testing::Values(0.0, 0.9)),
    [](const ::testing::TestParamInfo<EngineParam>& info) {
      std::string name = method_by_index(std::get<0>(info.param)).name() +
                         "_s" + std::to_string(std::get<1>(info.param)) +
                         "_z" +
                         std::to_string(int(std::get<2>(info.param) * 10));
      for (char& c : name) {
        if (c == '+' || c == '-' || c == '/' || c == '.') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace atp
