// Wire-protocol tests: exhaustive round-trips plus the malformed-input
// matrix.  The decoder's promise is that NO byte stream -- truncated,
// oversized, version-skewed, or hostile -- crashes it, reads out of bounds
// (ATP_SANITIZE covers that), or allocates unboundedly; bad streams surface
// as DecodeStatus::kBad / FrameReader::bad() so the owner drops the
// connection.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "server/protocol.h"

namespace atp::server {
namespace {

std::vector<MsgKind> all_kinds() {
  return {MsgKind::kHello, MsgKind::kBegin,   MsgKind::kOp,
          MsgKind::kCommit, MsgKind::kAbort,  MsgKind::kPing,
          MsgKind::kHelloOk, MsgKind::kOk,    MsgKind::kValue,
          MsgKind::kError};
}

WireMessage full_message(MsgKind k) {
  WireMessage m;
  m.kind = k;
  m.seq = 0x0123456789abcdefULL;
  m.txn = 42;
  m.op = 3;
  m.key = 0xfeedface;
  m.value = -1234.5625;
  m.value2 = 9.75e100;
  m.text = "class-or-error \"text\" with bytes \x01\x7f";
  return m;
}

TEST(Protocol, RoundTripsEveryKind) {
  for (const MsgKind k : all_kinds()) {
    const WireMessage in = full_message(k);
    const std::string bytes = encode_frame(in);
    WireMessage out;
    std::size_t consumed = 0;
    ASSERT_EQ(decode_frame(bytes, &out, &consumed), DecodeStatus::kOk)
        << to_string(k);
    EXPECT_EQ(consumed, bytes.size());
    EXPECT_EQ(in, out) << to_string(k);
  }
}

TEST(Protocol, RoundTripsEmptyTextAndZeroFields) {
  WireMessage in;  // all defaults
  const std::string bytes = encode_frame(in);
  WireMessage out;
  std::size_t consumed = 0;
  ASSERT_EQ(decode_frame(bytes, &out, &consumed), DecodeStatus::kOk);
  EXPECT_EQ(in, out);
}

TEST(Protocol, DoubleBitPatternsSurvive) {
  for (const double v : {0.0, -0.0, 1e-308, -1.75, 3.5e307,
                         std::numeric_limits<double>::infinity()}) {
    WireMessage in;
    in.value = v;
    in.value2 = -v;
    WireMessage out;
    std::size_t consumed = 0;
    ASSERT_EQ(decode_frame(encode_frame(in), &out, &consumed),
              DecodeStatus::kOk);
    EXPECT_EQ(std::memcmp(&in.value, &out.value, sizeof(double)), 0);
    EXPECT_EQ(std::memcmp(&in.value2, &out.value2, sizeof(double)), 0);
  }
}

TEST(Protocol, TruncatedFramesNeedMore) {
  const std::string bytes = encode_frame(full_message(MsgKind::kOp));
  // Every strict prefix is an incomplete frame, never an error.
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    WireMessage out;
    std::size_t consumed = 99;
    EXPECT_EQ(decode_frame(std::string_view(bytes).substr(0, len), &out,
                           &consumed),
              DecodeStatus::kNeedMore)
        << "prefix length " << len;
  }
}

TEST(Protocol, RejectsOversizedLength) {
  std::string bytes = encode_frame(WireMessage{});
  const std::uint32_t huge = kMaxFrameBytes + 1;
  std::memcpy(bytes.data(), &huge, sizeof huge);
  WireMessage out;
  std::size_t consumed = 0;
  EXPECT_EQ(decode_frame(bytes, &out, &consumed), DecodeStatus::kBad);
}

TEST(Protocol, RejectsBadVersion) {
  std::string bytes = encode_frame(WireMessage{});
  bytes[4] = char(kProtocolVersion + 1);
  WireMessage out;
  std::size_t consumed = 0;
  EXPECT_EQ(decode_frame(bytes, &out, &consumed), DecodeStatus::kBad);
}

TEST(Protocol, RejectsUnknownKind) {
  std::string bytes = encode_frame(WireMessage{});
  bytes[5] = char(0xee);
  WireMessage out;
  std::size_t consumed = 0;
  EXPECT_EQ(decode_frame(bytes, &out, &consumed), DecodeStatus::kBad);
}

TEST(Protocol, RejectsTextLengthDisagreeingWithFrame) {
  WireMessage in;
  in.text = "abcdef";
  std::string bytes = encode_frame(in);
  // Inflate the inner text length without growing the frame.
  const std::size_t text_len_off = bytes.size() - in.text.size() - 2;
  bytes[text_len_off] = char(0xff);
  bytes[text_len_off + 1] = char(0x7f);
  WireMessage out;
  std::size_t consumed = 0;
  EXPECT_EQ(decode_frame(bytes, &out, &consumed), DecodeStatus::kBad);
}

TEST(Protocol, RejectsLengthBelowMinimum) {
  std::string bytes = encode_frame(WireMessage{});
  const std::uint32_t tiny = 2;  // version + kind but no payload
  std::memcpy(bytes.data(), &tiny, sizeof tiny);
  WireMessage out;
  std::size_t consumed = 0;
  EXPECT_EQ(decode_frame(bytes, &out, &consumed), DecodeStatus::kBad);
}

TEST(FrameReader, ReassemblesByteAtATime) {
  const WireMessage in = full_message(MsgKind::kBegin);
  const std::string bytes = encode_frame(in);
  FrameReader r;
  for (std::size_t i = 0; i + 1 < bytes.size(); ++i) {
    r.feed(std::string_view(bytes).substr(i, 1));
    EXPECT_FALSE(r.next().has_value());
    EXPECT_FALSE(r.bad());
  }
  r.feed(std::string_view(bytes).substr(bytes.size() - 1));
  const auto out = r.next();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, in);
  EXPECT_EQ(r.buffered(), 0u);
}

TEST(FrameReader, PopsMultipleFramesFromOneFeed) {
  std::string stream;
  std::vector<WireMessage> sent;
  for (const MsgKind k : all_kinds()) {
    sent.push_back(full_message(k));
    encode_frame(sent.back(), &stream);
  }
  FrameReader r;
  r.feed(stream);
  for (const WireMessage& expect : sent) {
    const auto got = r.next();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, expect);
  }
  EXPECT_FALSE(r.next().has_value());
  EXPECT_FALSE(r.bad());
}

TEST(FrameReader, GoesBadOnCorruptStreamAndStaysBad) {
  FrameReader r;
  std::string bytes = encode_frame(WireMessage{});
  bytes[4] = char(0x77);  // wrong version
  r.feed(bytes);
  EXPECT_FALSE(r.next().has_value());
  EXPECT_TRUE(r.bad());
  // Feeding a valid frame afterwards cannot resynchronize framing.
  r.feed(encode_frame(WireMessage{}));
  EXPECT_FALSE(r.next().has_value());
  EXPECT_TRUE(r.bad());
}

TEST(FrameReader, DiscardsBytesOnceBad) {
  FrameReader r;
  std::string bytes = encode_frame(WireMessage{});
  bytes[4] = char(0x77);  // wrong version
  r.feed(bytes);
  EXPECT_FALSE(r.next().has_value());
  ASSERT_TRUE(r.bad());
  EXPECT_EQ(r.buffered(), 0u);
  // A hostile peer that keeps streaming after the stream went bad must not
  // grow the buffer while the owner gets around to dropping the connection.
  r.feed(std::string(1 << 16, 'x'));
  EXPECT_EQ(r.buffered(), 0u);
}

TEST(FrameReader, HandlesGarbageWithoutCrashing) {
  // Random-ish hostile bytes, including a plausible length prefix.
  std::string garbage;
  for (int i = 0; i < 4096; ++i) garbage += char((i * 131 + 7) & 0xff);
  FrameReader r;
  r.feed(garbage);
  while (r.next().has_value()) {
  }
  EXPECT_TRUE(r.bad());
}

}  // namespace
}  // namespace atp::server
