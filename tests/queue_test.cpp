// Recoverable-queue semantics (Section 4): transactional visibility,
// redelivery on abort, crash durability, retransmission + dedupe.
#include <gtest/gtest.h>

#include <chrono>
#include <string>

#include "queue/recoverable_queue.h"

namespace atp {
namespace {

using namespace std::chrono_literals;

class QueueTest : public ::testing::Test {
 protected:
  QueueTest()
      : net_(2, NetworkOptions{std::chrono::microseconds(100),
                               std::chrono::microseconds(0)}),
        sender_(0, net_),
        receiver_(1, net_),
        db_a_(DatabaseOptions{}),
        db_b_(DatabaseOptions{}) {}

  // Move qdata traffic from site 0's outbound into site 1's inbound, and
  // acks back, as the site service threads would.
  void shuttle() {
    for (int i = 0; i < 10; ++i) {
      while (auto m = net_.receive_request(1, 5ms)) {
        if (m->type == "qdata") receiver_.deliver(*m);
      }
      while (auto m = net_.receive_request(0, 5ms)) {
        if (m->type == "qack") sender_.handle_ack(*m);
      }
      if (sender_.outbound_backlog() == 0) break;
      sender_.pump();
    }
  }

  SimNetwork net_;
  QueueEndpoint sender_;
  QueueEndpoint receiver_;
  Database db_a_;  // at site 0 (sender side)
  Database db_b_;  // at site 1 (receiver side)
};

TEST_F(QueueTest, NothingSentUntilSenderCommits) {
  Txn t = db_a_.begin(TxnKind::Update, EpsilonSpec::unlimited());
  sender_.enqueue(t, 1, "q", std::string("hello"));
  EXPECT_EQ(sender_.outbound_backlog(), 0u);  // staged, not durable
  EXPECT_EQ(net_.stats().sent, 0u);
  ASSERT_TRUE(t.commit().ok());
  EXPECT_EQ(sender_.stats().enqueued, 1u);
  shuttle();
  EXPECT_EQ(receiver_.depth("q"), 1u);
}

TEST_F(QueueTest, AbortedSenderSendsNothing) {
  Txn t = db_a_.begin(TxnKind::Update, EpsilonSpec::unlimited());
  sender_.enqueue(t, 1, "q", std::string("hello"));
  t.abort();
  shuttle();
  EXPECT_EQ(receiver_.depth("q"), 0u);
  EXPECT_EQ(sender_.stats().enqueued, 0u);
}

TEST_F(QueueTest, DequeueConsumesOnCommit) {
  {
    Txn t = db_a_.begin(TxnKind::Update, EpsilonSpec::unlimited());
    sender_.enqueue(t, 1, "q", std::string("payload"));
    ASSERT_TRUE(t.commit().ok());
  }
  shuttle();
  Txn r = db_b_.begin(TxnKind::Update, EpsilonSpec::unlimited());
  auto payload = receiver_.try_dequeue(r, "q");
  ASSERT_TRUE(payload.has_value());
  EXPECT_EQ(std::any_cast<std::string>(*payload), "payload");
  EXPECT_EQ(receiver_.depth("q"), 0u);
  ASSERT_TRUE(r.commit().ok());
  EXPECT_EQ(receiver_.stats().consumed, 1u);
  // Gone for good.
  Txn r2 = db_b_.begin(TxnKind::Update, EpsilonSpec::unlimited());
  EXPECT_FALSE(receiver_.try_dequeue(r2, "q").has_value());
  r2.abort();
}

TEST_F(QueueTest, DequeueReturnsToFrontOnAbort) {
  {
    Txn t = db_a_.begin(TxnKind::Update, EpsilonSpec::unlimited());
    sender_.enqueue(t, 1, "q", std::string("first"));
    sender_.enqueue(t, 1, "q", std::string("second"));
    ASSERT_TRUE(t.commit().ok());
  }
  shuttle();
  ASSERT_EQ(receiver_.depth("q"), 2u);
  {
    Txn r = db_b_.begin(TxnKind::Update, EpsilonSpec::unlimited());
    auto p = receiver_.try_dequeue(r, "q");
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(std::any_cast<std::string>(*p), "first");
    r.abort();  // the message must return to the FRONT
  }
  EXPECT_EQ(receiver_.stats().redelivered, 1u);
  Txn r = db_b_.begin(TxnKind::Update, EpsilonSpec::unlimited());
  auto p = receiver_.try_dequeue(r, "q");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(std::any_cast<std::string>(*p), "first");  // order preserved
  ASSERT_TRUE(r.commit().ok());
}

TEST_F(QueueTest, EmptyQueueYieldsNothing) {
  Txn r = db_b_.begin(TxnKind::Update, EpsilonSpec::unlimited());
  EXPECT_FALSE(receiver_.try_dequeue(r, "nope").has_value());
  r.abort();
}

TEST_F(QueueTest, RetransmissionsAreDeduplicated) {
  {
    Txn t = db_a_.begin(TxnKind::Update, EpsilonSpec::unlimited());
    sender_.enqueue(t, 1, "q", std::string("once"));
    ASSERT_TRUE(t.commit().ok());
  }
  // Force several retransmissions before any ack is processed.
  sender_.set_retry_interval(0ms);
  sender_.pump();
  sender_.pump();
  shuttle();
  EXPECT_EQ(receiver_.depth("q"), 1u);  // exactly once
  EXPECT_GE(receiver_.stats().duplicates, 1u);
}

TEST_F(QueueTest, OutboundSurvivesSenderCrash) {
  {
    Txn t = db_a_.begin(TxnKind::Update, EpsilonSpec::unlimited());
    sender_.enqueue(t, 1, "q", std::string("durable"));
    ASSERT_TRUE(t.commit().ok());
  }
  // Receiver down: transmissions dropped.
  net_.set_site_up(1, false);
  sender_.pump();
  EXPECT_EQ(sender_.outbound_backlog(), 1u);
  // Sender crashes and recovers: committed outbound persists.
  sender_.crash();
  EXPECT_EQ(sender_.outbound_backlog(), 1u);
  net_.set_site_up(1, true);
  sender_.set_retry_interval(0ms);
  shuttle();
  EXPECT_EQ(receiver_.depth("q"), 1u);
}

TEST_F(QueueTest, ClaimRevertsOnReceiverCrash) {
  {
    Txn t = db_a_.begin(TxnKind::Update, EpsilonSpec::unlimited());
    sender_.enqueue(t, 1, "q", std::string("claimme"));
    ASSERT_TRUE(t.commit().ok());
  }
  shuttle();
  Txn r = db_b_.begin(TxnKind::Update, EpsilonSpec::unlimited());
  ASSERT_TRUE(receiver_.try_dequeue(r, "q").has_value());
  EXPECT_EQ(receiver_.depth("q"), 0u);
  // Site crashes with the claim in flight: the message must come back.
  receiver_.crash();
  EXPECT_EQ(receiver_.depth("q"), 1u);
  // The zombie transaction's abort must not double-redeliver.
  r.abort();
  EXPECT_EQ(receiver_.depth("q"), 1u);
}

TEST_F(QueueTest, MultipleQueuesAreIndependent) {
  {
    Txn t = db_a_.begin(TxnKind::Update, EpsilonSpec::unlimited());
    sender_.enqueue(t, 1, "alpha", std::string("a"));
    sender_.enqueue(t, 1, "beta", std::string("b"));
    ASSERT_TRUE(t.commit().ok());
  }
  shuttle();
  EXPECT_EQ(receiver_.depth("alpha"), 1u);
  EXPECT_EQ(receiver_.depth("beta"), 1u);
  auto names = receiver_.nonempty_queues();
  EXPECT_EQ(names.size(), 2u);
}

TEST_F(QueueTest, FifoOrderWithinQueue) {
  {
    Txn t = db_a_.begin(TxnKind::Update, EpsilonSpec::unlimited());
    for (int i = 0; i < 5; ++i) {
      sender_.enqueue(t, 1, "q", std::to_string(i));
    }
    ASSERT_TRUE(t.commit().ok());
  }
  shuttle();
  for (int i = 0; i < 5; ++i) {
    Txn r = db_b_.begin(TxnKind::Update, EpsilonSpec::unlimited());
    auto p = receiver_.try_dequeue(r, "q");
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(std::any_cast<std::string>(*p), std::to_string(i));
    ASSERT_TRUE(r.commit().ok());
  }
}

}  // namespace
}  // namespace atp
