#include <gtest/gtest.h>

#include <vector>

#include "txn/epsilon.h"
#include "txn/registry.h"

namespace atp {
namespace {

TEST(EpsilonSpec, Factories) {
  EXPECT_EQ(EpsilonSpec::serializable(), (EpsilonSpec{0, 0}));
  EXPECT_EQ(EpsilonSpec::symmetric(5), (EpsilonSpec{5, 5}));
  EXPECT_EQ(EpsilonSpec::importing(7).import_limit, 7);
  EXPECT_EQ(EpsilonSpec::importing(7).export_limit, 0);
  EXPECT_EQ(EpsilonSpec::exporting(9).export_limit, 9);
  EXPECT_EQ(EpsilonSpec::unlimited().import_limit, kInfiniteLimit);
}

TEST(EpsilonSpec, SpecForMapsKindToSide) {
  EXPECT_EQ(spec_for(TxnKind::Query, 10).import_limit, 10);
  EXPECT_EQ(spec_for(TxnKind::Query, 10).export_limit, 0);
  EXPECT_EQ(spec_for(TxnKind::Update, 10).export_limit, 10);
  EXPECT_EQ(spec_for(TxnKind::Update, 10).import_limit, 0);
}

TEST(EtRegistry, BeginAssignsDistinctIds) {
  EtRegistry reg;
  const TxnId a = reg.begin(TxnKind::Query, EpsilonSpec::importing(10));
  const TxnId b = reg.begin(TxnKind::Update, EpsilonSpec::exporting(10));
  EXPECT_NE(a, b);
  EXPECT_EQ(reg.kind_of(a), TxnKind::Query);
  EXPECT_EQ(reg.kind_of(b), TxnKind::Update);
  EXPECT_EQ(reg.live_count(), 2u);
}

TEST(EtRegistry, AllocateIdDoesNotRegister) {
  EtRegistry reg;
  const TxnId id = reg.allocate_id();
  EXPECT_NE(id, kInvalidTxn);
  EXPECT_EQ(reg.live_count(), 0u);
  EXPECT_FALSE(reg.get(id).has_value());
}

TEST(EtRegistry, UnknownKindDefaultsToUpdate) {
  EtRegistry reg;
  EXPECT_EQ(reg.kind_of(999), TxnKind::Update);
}

TEST(EtRegistry, PairChargeWithinLimits) {
  EtRegistry reg;
  const TxnId q = reg.begin(TxnKind::Query, EpsilonSpec::importing(10));
  const TxnId u = reg.begin(TxnKind::Update, EpsilonSpec::exporting(10));
  EXPECT_TRUE(reg.try_charge_pair(q, u, 4));
  EXPECT_TRUE(reg.try_charge_pair(q, u, 6));
  EXPECT_EQ(reg.fuzziness_of(q), 10);
  EXPECT_EQ(reg.fuzziness_of(u), 10);
}

TEST(EtRegistry, PairChargeRefusedWhenImportWouldOverflow) {
  EtRegistry reg;
  const TxnId q = reg.begin(TxnKind::Query, EpsilonSpec::importing(5));
  const TxnId u = reg.begin(TxnKind::Update, EpsilonSpec::exporting(100));
  EXPECT_TRUE(reg.try_charge_pair(q, u, 5));
  EXPECT_FALSE(reg.try_charge_pair(q, u, 1));  // import exhausted
  // No partial state change on refusal.
  EXPECT_EQ(reg.fuzziness_of(q), 5);
  EXPECT_EQ(reg.fuzziness_of(u), 5);
}

TEST(EtRegistry, PairChargeRefusedWhenExportWouldOverflow) {
  EtRegistry reg;
  const TxnId q = reg.begin(TxnKind::Query, EpsilonSpec::importing(100));
  const TxnId u = reg.begin(TxnKind::Update, EpsilonSpec::exporting(5));
  EXPECT_FALSE(reg.try_charge_pair(q, u, 6));
  EXPECT_EQ(reg.fuzziness_of(q), 0);
}

TEST(EtRegistry, NegativeChargeRejected) {
  EtRegistry reg;
  const TxnId q = reg.begin(TxnKind::Query, EpsilonSpec::importing(100));
  const TxnId u = reg.begin(TxnKind::Update, EpsilonSpec::exporting(100));
  EXPECT_FALSE(reg.try_charge_pair(q, u, -1));
}

TEST(EtRegistry, ChargeOnEndedEtFails) {
  EtRegistry reg;
  const TxnId q = reg.begin(TxnKind::Query, EpsilonSpec::importing(100));
  const TxnId u = reg.begin(TxnKind::Update, EpsilonSpec::exporting(100));
  reg.end_abort(q);
  EXPECT_FALSE(reg.try_charge_pair(q, u, 1));
}

TEST(EtRegistry, MultiChargeChargesEveryQueryAndScalesExport) {
  EtRegistry reg;
  const TxnId q1 = reg.begin(TxnKind::Query, EpsilonSpec::importing(10));
  const TxnId q2 = reg.begin(TxnKind::Query, EpsilonSpec::importing(10));
  const TxnId u = reg.begin(TxnKind::Update, EpsilonSpec::exporting(10));
  const std::vector<TxnId> qs{q1, q2};
  EXPECT_TRUE(reg.try_charge_multi(qs, u, 5));
  EXPECT_EQ(reg.fuzziness_of(q1), 5);
  EXPECT_EQ(reg.fuzziness_of(q2), 5);
  EXPECT_EQ(reg.fuzziness_of(u), 10);  // 5 per conflicting query
}

TEST(EtRegistry, MultiChargeAllOrNothing) {
  EtRegistry reg;
  const TxnId q1 = reg.begin(TxnKind::Query, EpsilonSpec::importing(10));
  const TxnId q2 = reg.begin(TxnKind::Query, EpsilonSpec::importing(2));
  const TxnId u = reg.begin(TxnKind::Update, EpsilonSpec::exporting(100));
  const std::vector<TxnId> qs{q1, q2};
  EXPECT_FALSE(reg.try_charge_multi(qs, u, 5));  // q2 would overflow
  EXPECT_EQ(reg.fuzziness_of(q1), 0);            // nothing applied
  EXPECT_EQ(reg.fuzziness_of(u), 0);
}

TEST(EtRegistry, MultiChargeSkipsEndedQueries) {
  EtRegistry reg;
  const TxnId q1 = reg.begin(TxnKind::Query, EpsilonSpec::importing(10));
  const TxnId q2 = reg.begin(TxnKind::Query, EpsilonSpec::importing(10));
  const TxnId u = reg.begin(TxnKind::Update, EpsilonSpec::exporting(5));
  reg.end_abort(q2);
  const std::vector<TxnId> qs{q1, q2};
  // Export needs 5 x 1 live query = 5 <= 5: succeeds.
  EXPECT_TRUE(reg.try_charge_multi(qs, u, 5));
  EXPECT_EQ(reg.fuzziness_of(q1), 5);
}

TEST(EtRegistry, MultiChargeZeroAlwaysSucceeds) {
  EtRegistry reg;
  const TxnId u = reg.begin(TxnKind::Update, EpsilonSpec::exporting(0));
  const std::vector<TxnId> qs{};
  EXPECT_TRUE(reg.try_charge_multi(qs, u, 0));
}

TEST(EtRegistry, CanChargeMultiPeeksWithoutApplying) {
  EtRegistry reg;
  const TxnId q = reg.begin(TxnKind::Query, EpsilonSpec::importing(10));
  const TxnId u = reg.begin(TxnKind::Update, EpsilonSpec::exporting(10));
  const std::vector<TxnId> qs{q};
  EXPECT_TRUE(reg.can_charge_multi(qs, u, 10));
  EXPECT_EQ(reg.fuzziness_of(q), 0);  // nothing applied
  EXPECT_FALSE(reg.can_charge_multi(qs, u, 11));
}

TEST(EtRegistry, SetSpecWidensBudget) {
  EtRegistry reg;
  const TxnId q = reg.begin(TxnKind::Query, EpsilonSpec::importing(1));
  const TxnId u = reg.begin(TxnKind::Update, EpsilonSpec::exporting(100));
  EXPECT_FALSE(reg.try_charge_pair(q, u, 5));
  reg.set_spec(q, EpsilonSpec::importing(10));
  EXPECT_TRUE(reg.try_charge_pair(q, u, 5));
}

TEST(EtRegistry, CommitRollsFuzzinessUpToParent) {
  EtRegistry reg;
  const TxnId parent = reg.allocate_id();
  const TxnId p1 =
      reg.begin(TxnKind::Query, EpsilonSpec::importing(10), parent);
  const TxnId p2 =
      reg.begin(TxnKind::Query, EpsilonSpec::importing(10), parent);
  const TxnId u = reg.begin(TxnKind::Update, EpsilonSpec::exporting(100));
  ASSERT_TRUE(reg.try_charge_pair(p1, u, 3));
  ASSERT_TRUE(reg.try_charge_pair(p2, u, 4));
  EXPECT_EQ(reg.end_commit(p1), 3);
  EXPECT_EQ(reg.end_commit(p2), 4);
  // Lemma 1: Z_t = sum of Z_p.
  EXPECT_EQ(reg.parent_fuzziness(parent), 7);
  reg.forget_parent(parent);
  EXPECT_EQ(reg.parent_fuzziness(parent), 0);
}

TEST(EtRegistry, AbortDropsFuzzinessWithoutRollup) {
  EtRegistry reg;
  const TxnId parent = reg.allocate_id();
  const TxnId p1 =
      reg.begin(TxnKind::Query, EpsilonSpec::importing(10), parent);
  const TxnId u = reg.begin(TxnKind::Update, EpsilonSpec::exporting(100));
  ASSERT_TRUE(reg.try_charge_pair(p1, u, 3));
  reg.end_abort(p1);  // "the piece rolls back and resets Z to zero"
  EXPECT_EQ(reg.parent_fuzziness(parent), 0);
  EXPECT_EQ(reg.live_count(), 1u);  // only u
}

TEST(EtRegistry, InfiniteLimitAbsorbsAnyCharge) {
  EtRegistry reg;
  const TxnId q = reg.begin(TxnKind::Query, EpsilonSpec::unlimited());
  const TxnId u = reg.begin(TxnKind::Update, EpsilonSpec::unlimited());
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(reg.try_charge_pair(q, u, 1e15));
  }
}

TEST(EtRegistry, SnapshotAllReportsEveryLiveEt) {
  EtRegistry reg;
  const TxnId parent = reg.allocate_id();
  const TxnId q =
      reg.begin(TxnKind::Query, EpsilonSpec::importing(10), parent);
  const TxnId u = reg.begin(TxnKind::Update, EpsilonSpec::exporting(20));
  ASSERT_TRUE(reg.try_charge_pair(q, u, 4));

  const std::vector<EtRegistry::Entry> all = reg.snapshot_all();
  ASSERT_EQ(all.size(), 2u);

  const auto find = [&](TxnId id) -> const EtRegistry::Entry* {
    for (const EtRegistry::Entry& e : all)
      if (e.id == id) return &e;
    return nullptr;
  };
  const EtRegistry::Entry* qe = find(q);
  const EtRegistry::Entry* ue = find(u);
  ASSERT_NE(qe, nullptr);
  ASSERT_NE(ue, nullptr);
  EXPECT_EQ(qe->kind, TxnKind::Query);
  EXPECT_EQ(qe->parent, parent);
  EXPECT_EQ(qe->spec.import_limit, 10);
  EXPECT_EQ(qe->imported, 4);
  EXPECT_EQ(qe->exported, 0);
  EXPECT_EQ(ue->kind, TxnKind::Update);
  EXPECT_EQ(ue->parent, kInvalidTxn);
  EXPECT_EQ(ue->spec.export_limit, 20);
  EXPECT_EQ(ue->exported, 4);
}

TEST(EtRegistry, SnapshotAllExcludesEndedEts) {
  EtRegistry reg;
  const TxnId q = reg.begin(TxnKind::Query, EpsilonSpec::importing(10));
  const TxnId u = reg.begin(TxnKind::Update, EpsilonSpec::exporting(10));
  (void)reg.end_commit(q);
  reg.end_abort(u);
  EXPECT_TRUE(reg.snapshot_all().empty());
}

TEST(EtRegistry, SnapshotAllSeesSpecWidening) {
  EtRegistry reg;
  const TxnId q = reg.begin(TxnKind::Query, EpsilonSpec::importing(5));
  reg.set_spec(q, EpsilonSpec::importing(50));
  const std::vector<EtRegistry::Entry> all = reg.snapshot_all();
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all[0].spec.import_limit, 50);
}

TEST(EtRegistry, SnapshotAllPairsStayConsistent) {
  // The import == export pairing of a lockstep-charged pair must hold in
  // every snapshot (snapshot_all reads the whole set under one seqlock
  // window; a charge in flight forces a retry, never a torn pair).
  EtRegistry reg;
  const TxnId q = reg.begin(TxnKind::Query, EpsilonSpec::importing(1e9));
  const TxnId u = reg.begin(TxnKind::Update, EpsilonSpec::exporting(1e9));
  for (int round = 0; round < 50; ++round) {
    ASSERT_TRUE(reg.try_charge_pair(q, u, 1));
    const std::vector<EtRegistry::Entry> all = reg.snapshot_all();
    Value imported = -1, exported = -2;
    for (const EtRegistry::Entry& e : all) {
      if (e.id == q) imported = e.imported;
      if (e.id == u) exported = e.exported;
    }
    EXPECT_EQ(imported, exported);
    EXPECT_EQ(imported, Value(round + 1));
  }
}

}  // namespace
}  // namespace atp
