// Strict-2PL concurrency control behaviour + the history oracle.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "sched/database.h"

namespace atp {
namespace {

using namespace std::chrono_literals;

DatabaseOptions cc_options(bool history = false) {
  DatabaseOptions o;
  o.scheduler = SchedulerKind::CC;
  o.lock_timeout = std::chrono::milliseconds(500);
  o.record_history = history;
  return o;
}

TEST(CcTxn, ReadYourOwnWrites) {
  Database db(cc_options());
  db.load(1, 100);
  Txn t = db.begin(TxnKind::Update, EpsilonSpec::serializable());
  ASSERT_TRUE(t.write(1, 150).ok());
  EXPECT_EQ(t.read(1).value(), 150);
  ASSERT_TRUE(t.commit().ok());
}

TEST(CcTxn, CommitMakesWritesVisible) {
  Database db(cc_options());
  db.load(1, 100);
  {
    Txn t = db.begin(TxnKind::Update, EpsilonSpec::serializable());
    ASSERT_TRUE(t.add(1, 50).ok());
    ASSERT_TRUE(t.commit().ok());
  }
  Txn r = db.begin(TxnKind::Query, EpsilonSpec::serializable());
  EXPECT_EQ(r.read(1).value(), 150);
  ASSERT_TRUE(r.commit().ok());
}

TEST(CcTxn, AbortRollsBackWrites) {
  Database db(cc_options());
  db.load(1, 100);
  {
    Txn t = db.begin(TxnKind::Update, EpsilonSpec::serializable());
    ASSERT_TRUE(t.write(1, 999).ok());
    t.abort();
  }
  Txn r = db.begin(TxnKind::Query, EpsilonSpec::serializable());
  EXPECT_EQ(r.read(1).value(), 100);
  ASSERT_TRUE(r.commit().ok());
}

TEST(CcTxn, DestructorAbortsActiveTxn) {
  Database db(cc_options());
  db.load(1, 100);
  {
    Txn t = db.begin(TxnKind::Update, EpsilonSpec::serializable());
    ASSERT_TRUE(t.write(1, 999).ok());
    // no commit: the destructor must abort
  }
  Txn r = db.begin(TxnKind::Query, EpsilonSpec::serializable());
  EXPECT_EQ(r.read(1).value(), 100);
  ASSERT_TRUE(r.commit().ok());
}

TEST(CcTxn, QueriesAreReadOnly) {
  Database db(cc_options());
  db.load(1, 100);
  Txn q = db.begin(TxnKind::Query, EpsilonSpec::serializable());
  EXPECT_EQ(q.write(1, 5).code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(q.add(1, 5).code(), ErrorCode::kInvalidArgument);
  q.abort();
}

TEST(CcTxn, OpsOnFinishedTxnFail) {
  Database db(cc_options());
  db.load(1, 100);
  Txn t = db.begin(TxnKind::Update, EpsilonSpec::serializable());
  ASSERT_TRUE(t.commit().ok());
  EXPECT_EQ(t.read(1).status().code(), ErrorCode::kFailedPrecondition);
  EXPECT_EQ(t.write(1, 1).code(), ErrorCode::kFailedPrecondition);
  EXPECT_EQ(t.commit().code(), ErrorCode::kFailedPrecondition);
}

TEST(CcTxn, ReaderSnapshotsPastWriterWithoutDirtyRead) {
  // Since the multi-version store, CC queries are snapshot reads: read-only
  // transactions over a committed snapshot are serializable (they order
  // before any writer that commits after their begin), so the reader no
  // longer queues behind the writer's X lock -- and still never observes
  // the dirty value.
  Database db(cc_options());
  db.load(1, 100);
  Txn w = db.begin(TxnKind::Update, EpsilonSpec::serializable());
  ASSERT_TRUE(w.write(1, 150).ok());

  Txn r = db.begin(TxnKind::Query, EpsilonSpec::serializable());
  Result<Value> v = r.read(1);  // does not block; strict 2PL would wait here
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 100);  // committed state as of begin, never the dirty 150
  ASSERT_TRUE(r.commit().ok());
  ASSERT_TRUE(w.commit().ok());

  // A reader beginning after the writer's commit sees the new value.
  Txn r2 = db.begin(TxnKind::Query, EpsilonSpec::serializable());
  EXPECT_EQ(r2.read(1).value(), 150);
  ASSERT_TRUE(r2.commit().ok());
}

TEST(CcTxn, WriteConflictDeadlockVictimCanRetry) {
  Database db(cc_options());
  db.load(1, 0);
  db.load(2, 0);
  // Classic crossing transfer: t1 holds 1 wants 2; t2 holds 2 wants 1.
  Txn t1 = db.begin(TxnKind::Update, EpsilonSpec::serializable());
  Txn t2 = db.begin(TxnKind::Update, EpsilonSpec::serializable());
  ASSERT_TRUE(t1.add(1, 10).ok());
  ASSERT_TRUE(t2.add(2, 10).ok());
  std::atomic<bool> t1_done{false};
  std::thread th([&] {
    (void)t1.add(2, 10);  // blocks
    t1_done = true;
    (void)t1.commit();
  });
  std::this_thread::sleep_for(50ms);
  const Status s = t2.add(1, 10);  // closes the cycle -> deadlock victim
  EXPECT_EQ(s.code(), ErrorCode::kDeadlock);
  t2.abort();
  th.join();
  EXPECT_TRUE(t1_done.load());
  // Retry of the victim succeeds now.
  Txn t3 = db.begin(TxnKind::Update, EpsilonSpec::serializable());
  EXPECT_TRUE(t3.add(1, 10).ok());
  EXPECT_TRUE(t3.add(2, 10).ok());
  EXPECT_TRUE(t3.commit().ok());
}

TEST(CcHistory, RecordsCommittedProjection) {
  Database db(cc_options(/*history=*/true));
  db.load(1, 100);
  Txn t = db.begin(TxnKind::Update, EpsilonSpec::serializable());
  ASSERT_TRUE(t.add(1, 1).ok());
  ASSERT_TRUE(t.commit().ok());
  Txn a = db.begin(TxnKind::Update, EpsilonSpec::serializable());
  ASSERT_TRUE(a.add(1, 1).ok());
  a.abort();
  const auto events = db.history().events();
  EXPECT_FALSE(events.empty());
  EXPECT_EQ(db.history().committed().size(), 1u);
  EXPECT_TRUE(db.history().committed_projection_serializable());
}

TEST(CcHistory, DetectsNonSerializableInterleaving) {
  // Hand-build a classic lost-update style anomaly to prove the checker has
  // teeth: r1(x) r2(x) w1(x) w2(x) with both committed.
  HistoryRecorder h;
  h.set_enabled(true);
  h.record(1, OpType::Read, 1, 0);
  h.record(2, OpType::Read, 1, 0);
  h.record(1, OpType::Write, 1, 1);
  h.record(2, OpType::Write, 1, 2);
  h.mark_committed(1);
  h.mark_committed(2);
  EXPECT_FALSE(h.committed_projection_serializable());
}

TEST(CcHistory, MergeByParentChecksOriginalGranularity) {
  // Pieces p1 (txn A) and p2 (txn A) interleaved with B such that pieces are
  // serializable but the merged original transactions are not:
  //   w_p1(x) r_B(x) r_B(y) w_p2(y)  with A = {p1, p2}.
  HistoryRecorder h;
  h.set_enabled(true);
  h.record(10, OpType::Write, 1, 1);  // p1 writes x
  h.record(30, OpType::Read, 1, 1);   // B reads x (after p1)
  h.record(30, OpType::Read, 2, 0);   // B reads y (before p2)
  h.record(20, OpType::Write, 2, 1);  // p2 writes y
  h.mark_committed(10);
  h.mark_committed(20);
  h.mark_committed(30);
  // Piece-level: p1 -> B -> p2, acyclic.
  EXPECT_TRUE(h.committed_projection_serializable());
  // Original-transaction level: A -> B and B -> A, cyclic.
  std::unordered_map<TxnId, TxnId> parent{{10, 100}, {20, 100}};
  EXPECT_FALSE(h.committed_projection_serializable(&parent));
}

TEST(CcConcurrent, RandomTransfersAreSerializableAndConserveMoney) {
  Database db(cc_options(/*history=*/true));
  constexpr int kAccounts = 16;
  constexpr Value kInitial = 1000;
  for (int i = 0; i < kAccounts; ++i) db.load(i, kInitial);

  constexpr int kThreads = 4;
  constexpr int kTxnsPerThread = 50;
  std::vector<std::thread> threads;
  for (int w = 0; w < kThreads; ++w) {
    threads.emplace_back([&, w] {
      Rng rng(1000 + w);
      for (int i = 0; i < kTxnsPerThread; ++i) {
        for (;;) {  // retry on deadlock
          Txn t = db.begin(TxnKind::Update, EpsilonSpec::serializable());
          const Key a = rng.uniform(kAccounts);
          Key b = rng.uniform(kAccounts);
          while (b == a) b = rng.uniform(kAccounts);
          const Value d = 1 + Value(rng.uniform(50));
          if (t.add(a, -d).ok() && t.add(b, +d).ok() && t.commit().ok()) break;
          t.abort();
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  // Conservation: the committed sum equals the initial sum exactly.
  Value sum = 0;
  for (const auto& [k, v] : db.store().snapshot_committed()) sum += v;
  EXPECT_EQ(sum, kInitial * kAccounts);
  // And the committed history is conflict-serializable.
  EXPECT_TRUE(db.history().committed_projection_serializable());
}

}  // namespace
}  // namespace atp
