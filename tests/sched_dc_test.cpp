// Divergence control over the multi-version store: queries read versions
// (never locks), import fuzziness is charged from version timestamps
// (|v_latest - v_snapshot| per key), budget exhaustion degrades to snapshot
// reads, and the ESR guarantee that observed inconsistency stays within
// eps-specs holds end to end.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "sched/database.h"

namespace atp {
namespace {

using namespace std::chrono_literals;

DatabaseOptions dc_options(std::chrono::milliseconds timeout = 500ms) {
  DatabaseOptions o;
  o.scheduler = SchedulerKind::DC;
  o.lock_timeout = timeout;
  return o;
}

TEST(DcTxn, QueryNeverBlocksOrSeesUncommittedWrites) {
  Database db(dc_options());
  db.load(1, 100);
  Txn u = db.begin(TxnKind::Update, EpsilonSpec::exporting(100));
  ASSERT_TRUE(u.write(1, 150).ok());  // X lock + dirty value staged

  Txn q = db.begin(TxnKind::Query, EpsilonSpec::importing(100));
  Result<Value> v = q.read(1);  // would block under CC; version read here
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 100);   // committed state only: dirty never leaks
  EXPECT_EQ(q.fuzziness(), 0); // nothing diverged, nothing charged
  ASSERT_TRUE(q.commit().ok());
  ASSERT_TRUE(u.commit().ok());
}

TEST(DcTxn, StaleReadChargesVersionDistanceWithinBudget) {
  Database db(dc_options());
  db.load(1, 100);
  Txn q = db.begin(TxnKind::Query, EpsilonSpec::importing(100));
  {
    Txn u = db.begin(TxnKind::Update, EpsilonSpec::unlimited());
    ASSERT_TRUE(u.write(1, 150).ok());
    ASSERT_TRUE(u.commit().ok());  // key moves past q's snapshot
  }
  Result<Value> v = q.read(1);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 150);     // freshest version, within budget
  EXPECT_EQ(q.fuzziness(), 50);  // |150 - 100| imported
  ASSERT_TRUE(q.commit().ok());
}

TEST(DcTxn, BudgetTooSmallFallsBackToSnapshotRead) {
  Database db(dc_options(200ms));
  db.load(1, 100);
  Txn q = db.begin(TxnKind::Query, EpsilonSpec::importing(10));  // < 50
  {
    Txn u = db.begin(TxnKind::Update, EpsilonSpec::unlimited());
    ASSERT_TRUE(u.write(1, 150).ok());
    ASSERT_TRUE(u.commit().ok());
  }
  // Old DC blocked here (import budget exhausted -> wait like 2PL).  The
  // version store answers from the snapshot instead: consistent and free.
  Result<Value> v = q.read(1);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 100);
  EXPECT_EQ(q.fuzziness(), 0);
  ASSERT_TRUE(q.commit().ok());
}

TEST(DcTxn, UpdateNeverBlocksOnConcurrentQuery) {
  Database db(dc_options());
  db.load(1, 100);
  Txn q = db.begin(TxnKind::Query, EpsilonSpec::importing(100));
  ASSERT_TRUE(q.read(1).ok());  // snapshot read: no S lock taken

  Txn u = db.begin(TxnKind::Update, EpsilonSpec::exporting(100));
  ASSERT_TRUE(u.add(1, 30).ok());  // would block under CC behind q's S lock
  ASSERT_TRUE(u.commit().ok());
  // The query pays for freshness only if it looks again.
  Result<Value> v = q.read(1);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 130);
  EXPECT_EQ(q.fuzziness(), 30);
  ASSERT_TRUE(q.commit().ok());
}

TEST(DcTxn, ExhaustedQueryDegradesWhileUpdatesProceed) {
  Database db(dc_options(200ms));
  db.load(1, 100);
  Txn q = db.begin(TxnKind::Query, EpsilonSpec::importing(5));
  ASSERT_TRUE(q.read(1).ok());

  // Old DC blocked this update (export > q's remaining import).  Now the
  // update is never taxed for concurrent queries and commits immediately.
  Txn u = db.begin(TxnKind::Update, EpsilonSpec::exporting(1000));
  ASSERT_TRUE(u.add(1, 30).ok());
  ASSERT_TRUE(u.commit().ok());

  Result<Value> v = q.read(1);  // delta 30 > budget 5: snapshot version
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 100);
  EXPECT_EQ(q.fuzziness(), 0);
  ASSERT_TRUE(q.commit().ok());
}

TEST(DcTxn, UpdateUpdateConflictsNeverFuzzyGrant) {
  Database db(dc_options(200ms));
  db.load(1, 100);
  Txn u1 = db.begin(TxnKind::Update, EpsilonSpec::unlimited());
  ASSERT_TRUE(u1.write(1, 150).ok());
  Txn u2 = db.begin(TxnKind::Update, EpsilonSpec::unlimited());
  // Even unlimited budgets must not let updates interleave: update ETs stay
  // serializable among themselves (Section 1.1).
  const Status s = u2.write(1, 160);
  EXPECT_EQ(s.code(), ErrorCode::kTimeout);
  u2.abort();
  ASSERT_TRUE(u1.commit().ok());
}

TEST(DcTxn, QueryQueryNeverConflicts) {
  Database db(dc_options());
  db.load(1, 100);
  Txn q1 = db.begin(TxnKind::Query, EpsilonSpec::importing(0));
  Txn q2 = db.begin(TxnKind::Query, EpsilonSpec::importing(0));
  EXPECT_TRUE(q1.read(1).ok());
  EXPECT_TRUE(q2.read(1).ok());
  ASSERT_TRUE(q1.commit().ok());
  ASSERT_TRUE(q2.commit().ok());
}

TEST(DcTxn, ZeroEpsilonBehavesLikeSerializable) {
  Database db(dc_options(200ms));
  db.load(1, 100);
  Txn q = db.begin(TxnKind::Query, EpsilonSpec::importing(0));
  {
    Txn u = db.begin(TxnKind::Update, EpsilonSpec::unlimited());
    ASSERT_TRUE(u.write(1, 150).ok());
    ASSERT_TRUE(u.commit().ok());
  }
  // Zero import budget means pure snapshot reads -- a serializable query
  // that sees the database exactly as of its begin, with Z == 0.
  Result<Value> v = q.read(1);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 100);
  EXPECT_EQ(q.fuzziness(), 0);
  ASSERT_TRUE(q.commit().ok());
}

TEST(DcTxn, SequentialDivergenceChargesOnlyTheIncrease) {
  Database db(dc_options(200ms));
  db.load(1, 100);
  Txn q = db.begin(TxnKind::Query, EpsilonSpec::importing(60));

  const auto commit_add = [&](Value d) {
    Txn u = db.begin(TxnKind::Update, EpsilonSpec::unlimited());
    ASSERT_TRUE(u.add(1, d).ok());
    ASSERT_TRUE(u.commit().ok());
  };

  // Divergence 40 fits the 60 budget: fresh read, charged in full.
  commit_add(40);
  ASSERT_TRUE(q.read(1).ok());
  EXPECT_EQ(q.read(1).value(), 140);
  EXPECT_EQ(q.fuzziness(), 40);

  // Divergence now 80; the extra 40 exceeds the remaining 20 -> the read
  // degrades to the (still consistent) snapshot version, charging nothing.
  commit_add(40);
  EXPECT_EQ(q.read(1).value(), 100);
  EXPECT_EQ(q.fuzziness(), 40);

  // The key swings back: divergence 55, increase over the 40 already paid
  // is 15 <= 20 remaining -> fresh again.
  commit_add(-25);
  EXPECT_EQ(q.read(1).value(), 155);
  EXPECT_EQ(q.fuzziness(), 55);
  ASSERT_TRUE(q.commit().ok());
}

TEST(DcTxn, ConcurrentQueriesChargeIndependentBudgets) {
  Database db(dc_options(200ms));
  db.load(1, 100);
  Txn q1 = db.begin(TxnKind::Query, EpsilonSpec::importing(100));
  Txn q2 = db.begin(TxnKind::Query, EpsilonSpec::importing(5));
  {
    Txn u = db.begin(TxnKind::Update, EpsilonSpec::exporting(50));
    ASSERT_TRUE(u.add(1, 20).ok());
    ASSERT_TRUE(u.commit().ok());  // no export tax, no blocking
  }
  // Each query pays from its own account: q1 affords freshness, q2 does not.
  EXPECT_EQ(q1.read(1).value(), 120);
  EXPECT_EQ(q1.fuzziness(), 20);
  EXPECT_EQ(q2.read(1).value(), 100);
  EXPECT_EQ(q2.fuzziness(), 0);
  ASSERT_TRUE(q1.commit().ok());
  ASSERT_TRUE(q2.commit().ok());
}

TEST(DcTxn, AbortedQueryFuzzinessResets) {
  Database db(dc_options());
  db.load(1, 100);
  {
    Txn q = db.begin(TxnKind::Query, EpsilonSpec::importing(100));
    Txn u = db.begin(TxnKind::Update, EpsilonSpec::exporting(1000));
    ASSERT_TRUE(u.write(1, 150).ok());
    ASSERT_TRUE(u.commit().ok());
    ASSERT_TRUE(q.read(1).ok());
    EXPECT_EQ(q.fuzziness(), 50);
    q.abort();  // Z resets to zero with the abort
  }
  // A fresh query starts from a clean account (and a fresh snapshot, so the
  // earlier movement is simply part of its consistent view).
  Txn q2 = db.begin(TxnKind::Query, EpsilonSpec::importing(100));
  ASSERT_TRUE(q2.read(1).ok());
  EXPECT_EQ(q2.read(1).value(), 150);
  EXPECT_EQ(q2.fuzziness(), 0);
  ASSERT_TRUE(q2.commit().ok());
}

TEST(DcTxn, QueriesBypassTheLockManagerEntirely) {
  Database db(dc_options());
  db.load(1, 100);
  const auto total_acquires = [&] {
    std::uint64_t n = 0;
    for (const LockStripeSnapshot& s : db.locks().stripe_stats()) {
      n += s.acquires;
    }
    return n;
  };
  const std::uint64_t before = total_acquires();
  Txn q = db.begin(TxnKind::Query, EpsilonSpec::importing(100));
  ASSERT_TRUE(q.read(1).ok());
  ASSERT_TRUE(q.commit().ok());
  EXPECT_EQ(total_acquires(), before);              // no lock traffic at all
  EXPECT_EQ(db.locks().stats().fuzzy_grants, 0u);   // fuzzy grants are gone
  EXPECT_GE(db.store().mvcc_stats().snapshots_acquired, 1u);
}

TEST(DcTxn, CrashRestartNeverUnderCountsBudgets) {
  // Crash-restart interaction of the epsilon ledger with durability: an
  // update dies with the crash -- its handle must NOT be able to commit
  // afterwards (the staged write was wiped; "committing" would install
  // nothing while reporting success).  Post-recovery, fresh transactions
  // run with a clean ledger and the committed state is intact.
  LogDevice wal;
  DatabaseOptions o = dc_options();
  o.wal = &wal;
  Database db(o);
  db.load(1, 100);
  db.checkpoint();

  Txn u = db.begin(TxnKind::Update, EpsilonSpec::exporting(60));
  ASSERT_TRUE(u.add(1, 50).ok());
  Txn q = db.begin(TxnKind::Query, EpsilonSpec::importing(60));
  ASSERT_TRUE(q.read(1).ok());  // committed state: the staged 50 is invisible
  EXPECT_EQ(q.fuzziness(), 0);
  ASSERT_TRUE(q.commit().ok());

  db.crash();
  // The crash-epoch guard refuses the stale commit.
  EXPECT_FALSE(u.commit().ok());

  (void)db.recover_from_wal();
  EXPECT_EQ(db.store().read_committed(1).value(), 100);

  // The ledger is clean: a full-budget import succeeds afresh.
  Txn u2 = db.begin(TxnKind::Update, EpsilonSpec::exporting(60));
  ASSERT_TRUE(u2.add(1, 50).ok());
  Txn q2 = db.begin(TxnKind::Query, EpsilonSpec::importing(60));
  ASSERT_TRUE(u2.commit().ok());
  ASSERT_TRUE(q2.read(1).ok());  // committed after q2's snapshot: charges 50
  EXPECT_EQ(q2.fuzziness(), 50);
  ASSERT_TRUE(q2.commit().ok());
  EXPECT_EQ(db.store().read_committed(1).value(), 150);
}

TEST(DcGuarantee, AuditErrorBoundedByImportLimit) {
  Database db(dc_options(std::chrono::milliseconds(2000)));
  constexpr int kAccounts = 8;
  constexpr Value kInitial = 1000;
  constexpr Value kEps = 120;
  for (int i = 0; i < kAccounts; ++i) db.load(i, kInitial);

  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int w = 0; w < 2; ++w) {
    writers.emplace_back([&, w] {
      Rng rng(77 + w);
      while (!stop.load(std::memory_order_relaxed)) {
        Txn t = db.begin(TxnKind::Update, EpsilonSpec::exporting(100));
        const Key a = rng.uniform(kAccounts);
        Key b = rng.uniform(kAccounts);
        while (b == a) b = rng.uniform(kAccounts);
        const Value d = 1 + Value(rng.uniform(40));
        if (!t.add(a, -d).ok() || !t.add(b, +d).ok() || !t.commit().ok()) {
          t.abort();
        }
      }
    });
  }

  for (int round = 0; round < 20; ++round) {
    for (;;) {
      Txn q = db.begin(TxnKind::Query, EpsilonSpec::importing(kEps));
      Value sum = 0;
      bool failed = false;
      for (int i = 0; i < kAccounts; ++i) {
        Result<Value> v = q.read(i);
        if (!v.ok()) {
          failed = true;  // snapshot too old under churn: retry afresh
          break;
        }
        sum += v.value();
      }
      if (failed) {
        q.abort();
        continue;
      }
      const Value z = q.fuzziness();
      ASSERT_TRUE(q.commit().ok());
      const Value err = distance(sum, kInitial * kAccounts);
      // Realized inconsistency never exceeds the accounted fuzziness, which
      // never exceeds the import limit.
      EXPECT_LE(err, z + 1e-9);
      EXPECT_LE(z, kEps + 1e-9);
      break;
    }
  }
  stop = true;
  for (auto& t : writers) t.join();
}

}  // namespace
}  // namespace atp
