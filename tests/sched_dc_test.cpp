// Two-phase-locking divergence control: fuzzy grants, import/export
// accounting, epsilon-exhaustion blocking, and the ESR guarantee that
// observed inconsistency stays within eps-specs.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "sched/database.h"

namespace atp {
namespace {

using namespace std::chrono_literals;

DatabaseOptions dc_options(std::chrono::milliseconds timeout = 500ms) {
  DatabaseOptions o;
  o.scheduler = SchedulerKind::DC;
  o.lock_timeout = timeout;
  return o;
}

TEST(DcTxn, QueryReadsPastUncommittedWriteWithinBudget) {
  Database db(dc_options());
  db.load(1, 100);
  Txn u = db.begin(TxnKind::Update, EpsilonSpec::exporting(100));
  ASSERT_TRUE(u.write(1, 150).ok());  // X lock + dirty value staged

  Txn q = db.begin(TxnKind::Query, EpsilonSpec::importing(100));
  Result<Value> v = q.read(1);  // would block under CC; fuzzy grant here
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 150);  // observes the dirty value
  // Both sides charged the pending delta (50).
  EXPECT_EQ(q.fuzziness(), 50);
  EXPECT_EQ(u.fuzziness(), 50);
  ASSERT_TRUE(q.commit().ok());
  ASSERT_TRUE(u.commit().ok());
}

TEST(DcTxn, QueryBlocksWhenImportBudgetTooSmall) {
  Database db(dc_options(200ms));
  db.load(1, 100);
  Txn u = db.begin(TxnKind::Update, EpsilonSpec::exporting(1000));
  ASSERT_TRUE(u.write(1, 150).ok());

  Txn q = db.begin(TxnKind::Query, EpsilonSpec::importing(10));  // < 50
  const Result<Value> v = q.read(1);
  EXPECT_EQ(v.status().code(), ErrorCode::kTimeout);  // blocked like 2PL
  q.abort();
  ASSERT_TRUE(u.commit().ok());
}

TEST(DcTxn, QueryBlocksWhenUpdateExportBudgetTooSmall) {
  Database db(dc_options(200ms));
  db.load(1, 100);
  Txn u = db.begin(TxnKind::Update, EpsilonSpec::exporting(10));  // < 50
  ASSERT_TRUE(u.write(1, 150).ok());

  Txn q = db.begin(TxnKind::Query, EpsilonSpec::importing(1000));
  const Result<Value> v = q.read(1);
  EXPECT_EQ(v.status().code(), ErrorCode::kTimeout);
  q.abort();
  ASSERT_TRUE(u.commit().ok());
}

TEST(DcTxn, UpdateWritesPastQuerySharedLockAndChargesAtWriteTime) {
  Database db(dc_options());
  db.load(1, 100);
  Txn q = db.begin(TxnKind::Query, EpsilonSpec::importing(100));
  ASSERT_TRUE(q.read(1).ok());  // plain S lock, no conflict yet

  Txn u = db.begin(TxnKind::Update, EpsilonSpec::exporting(100));
  ASSERT_TRUE(u.add(1, 30).ok());  // would block under CC
  EXPECT_EQ(q.fuzziness(), 30);    // charged when the write landed
  EXPECT_EQ(u.fuzziness(), 30);
  ASSERT_TRUE(u.commit().ok());
  ASSERT_TRUE(q.commit().ok());
}

TEST(DcTxn, UpdateBlocksWhenQueryImportExhausted) {
  Database db(dc_options(200ms));
  db.load(1, 100);
  Txn q = db.begin(TxnKind::Query, EpsilonSpec::importing(5));
  ASSERT_TRUE(q.read(1).ok());

  Txn u = db.begin(TxnKind::Update, EpsilonSpec::exporting(1000));
  // Announced delta 30 > q's import budget 5: the X grant is refused and the
  // update waits like plain 2PL, then times out (q never releases).
  const Status s = u.add(1, 30);
  EXPECT_EQ(s.code(), ErrorCode::kTimeout);
  u.abort();
  ASSERT_TRUE(q.commit().ok());
}

TEST(DcTxn, UpdateUpdateConflictsNeverFuzzyGrant) {
  Database db(dc_options(200ms));
  db.load(1, 100);
  Txn u1 = db.begin(TxnKind::Update, EpsilonSpec::unlimited());
  ASSERT_TRUE(u1.write(1, 150).ok());
  Txn u2 = db.begin(TxnKind::Update, EpsilonSpec::unlimited());
  // Even unlimited budgets must not let updates interleave: update ETs stay
  // serializable among themselves (Section 1.1).
  const Status s = u2.write(1, 160);
  EXPECT_EQ(s.code(), ErrorCode::kTimeout);
  u2.abort();
  ASSERT_TRUE(u1.commit().ok());
}

TEST(DcTxn, QueryQueryNeverConflicts) {
  Database db(dc_options());
  db.load(1, 100);
  Txn q1 = db.begin(TxnKind::Query, EpsilonSpec::importing(0));
  Txn q2 = db.begin(TxnKind::Query, EpsilonSpec::importing(0));
  EXPECT_TRUE(q1.read(1).ok());
  EXPECT_TRUE(q2.read(1).ok());
  ASSERT_TRUE(q1.commit().ok());
  ASSERT_TRUE(q2.commit().ok());
}

TEST(DcTxn, ZeroEpsilonBehavesLikeSerializable) {
  Database db(dc_options(200ms));
  db.load(1, 100);
  Txn u = db.begin(TxnKind::Update, EpsilonSpec::exporting(0));
  ASSERT_TRUE(u.write(1, 150).ok());
  Txn q = db.begin(TxnKind::Query, EpsilonSpec::importing(0));
  EXPECT_EQ(q.read(1).status().code(), ErrorCode::kTimeout);
  q.abort();
  ASSERT_TRUE(u.commit().ok());
}

TEST(DcTxn, SequentialConflictsAccumulateUntilBudgetExhausted) {
  Database db(dc_options(200ms));
  db.load(1, 100);
  Txn q = db.begin(TxnKind::Query, EpsilonSpec::importing(60));
  ASSERT_TRUE(q.read(1).ok());

  // First update: delta 40 fits (60 budget).
  {
    Txn u = db.begin(TxnKind::Update, EpsilonSpec::exporting(1000));
    ASSERT_TRUE(u.add(1, 40).ok());
    ASSERT_TRUE(u.commit().ok());
  }
  EXPECT_EQ(q.fuzziness(), 40);
  // Second update: delta 40 would exceed the remaining 20 -> blocks.
  {
    Txn u = db.begin(TxnKind::Update, EpsilonSpec::exporting(1000));
    EXPECT_EQ(u.add(1, 40).code(), ErrorCode::kTimeout);
    u.abort();
  }
  // But delta 15 still fits.
  {
    Txn u = db.begin(TxnKind::Update, EpsilonSpec::exporting(1000));
    EXPECT_TRUE(u.add(1, 15).ok());
    ASSERT_TRUE(u.commit().ok());
  }
  EXPECT_EQ(q.fuzziness(), 55);
  ASSERT_TRUE(q.commit().ok());
}

TEST(DcTxn, ExportBudgetSharedAcrossConcurrentQueries) {
  Database db(dc_options(200ms));
  db.load(1, 100);
  Txn q1 = db.begin(TxnKind::Query, EpsilonSpec::importing(100));
  Txn q2 = db.begin(TxnKind::Query, EpsilonSpec::importing(100));
  ASSERT_TRUE(q1.read(1).ok());
  ASSERT_TRUE(q2.read(1).ok());

  // Export charged once per conflicting query: 2 x 30 = 60 > 50 -> blocked.
  {
    Txn u = db.begin(TxnKind::Update, EpsilonSpec::exporting(50));
    EXPECT_EQ(u.add(1, 30).code(), ErrorCode::kTimeout);
    u.abort();
  }
  // 2 x 20 = 40 <= 50 -> allowed.
  {
    Txn u = db.begin(TxnKind::Update, EpsilonSpec::exporting(50));
    EXPECT_TRUE(u.add(1, 20).ok());
    ASSERT_TRUE(u.commit().ok());
    EXPECT_EQ(q1.fuzziness(), 20);
    EXPECT_EQ(q2.fuzziness(), 20);
  }
  ASSERT_TRUE(q1.commit().ok());
  ASSERT_TRUE(q2.commit().ok());
}

TEST(DcTxn, AbortedQueryFuzzinessResets) {
  Database db(dc_options());
  db.load(1, 100);
  Txn u = db.begin(TxnKind::Update, EpsilonSpec::exporting(1000));
  ASSERT_TRUE(u.write(1, 150).ok());
  {
    Txn q = db.begin(TxnKind::Query, EpsilonSpec::importing(100));
    ASSERT_TRUE(q.read(1).ok());
    EXPECT_EQ(q.fuzziness(), 50);
    q.abort();  // Z resets to zero with the abort
  }
  // A fresh query starts from a clean account.
  Txn q2 = db.begin(TxnKind::Query, EpsilonSpec::importing(100));
  ASSERT_TRUE(q2.read(1).ok());
  EXPECT_EQ(q2.fuzziness(), 50);
  ASSERT_TRUE(q2.commit().ok());
  ASSERT_TRUE(u.commit().ok());
}

TEST(DcTxn, FuzzyGrantStatRecorded) {
  Database db(dc_options());
  db.load(1, 100);
  Txn u = db.begin(TxnKind::Update, EpsilonSpec::exporting(100));
  ASSERT_TRUE(u.write(1, 150).ok());
  Txn q = db.begin(TxnKind::Query, EpsilonSpec::importing(100));
  ASSERT_TRUE(q.read(1).ok());
  EXPECT_GE(db.locks().stats().fuzzy_grants, 1u);
  ASSERT_TRUE(q.commit().ok());
  ASSERT_TRUE(u.commit().ok());
}

// The ESR guarantee, exercised end to end: under concurrent bounded
// transfers, an audit query's observed total deviates from the invariant
// total by at most its import limit.
TEST(DcTxn, CrashRestartNeverUnderCountsBudgets) {
  // Crash-restart interaction of the epsilon ledger with durability: an
  // update whose export was charged to a concurrent query dies with the
  // crash -- its handle must NOT be able to commit afterwards (the staged
  // write was wiped; "committing" would install nothing while reporting
  // success, silently divorcing the committed state from what the query's
  // import charge accounted for).  Post-recovery, fresh transactions run
  // with a clean ledger.
  LogDevice wal;
  DatabaseOptions o = dc_options();
  o.wal = &wal;
  Database db(o);
  db.load(1, 100);
  db.checkpoint();

  Txn u = db.begin(TxnKind::Update, EpsilonSpec::exporting(60));
  ASSERT_TRUE(u.add(1, 50).ok());
  Txn q = db.begin(TxnKind::Query, EpsilonSpec::importing(60));
  ASSERT_TRUE(q.read(1).ok());  // fuzzy grant: both sides charge 50
  EXPECT_EQ(q.fuzziness(), 50);
  ASSERT_TRUE(q.commit().ok());

  db.crash();
  // The crash-epoch guard refuses the stale commit.
  EXPECT_FALSE(u.commit().ok());

  (void)db.recover_from_wal();
  EXPECT_EQ(db.store().read_committed(1).value(), 100);

  // The ledger is clean: a full-budget export and import succeed afresh.
  Txn u2 = db.begin(TxnKind::Update, EpsilonSpec::exporting(60));
  ASSERT_TRUE(u2.add(1, 50).ok());
  Txn q2 = db.begin(TxnKind::Query, EpsilonSpec::importing(60));
  ASSERT_TRUE(q2.read(1).ok());
  EXPECT_EQ(q2.fuzziness(), 50);
  ASSERT_TRUE(q2.commit().ok());
  ASSERT_TRUE(u2.commit().ok());
  EXPECT_EQ(db.store().read_committed(1).value(), 150);
}

TEST(DcGuarantee, AuditErrorBoundedByImportLimit) {
  Database db(dc_options(std::chrono::milliseconds(2000)));
  constexpr int kAccounts = 8;
  constexpr Value kInitial = 1000;
  constexpr Value kEps = 120;
  for (int i = 0; i < kAccounts; ++i) db.load(i, kInitial);

  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int w = 0; w < 2; ++w) {
    writers.emplace_back([&, w] {
      Rng rng(77 + w);
      while (!stop.load(std::memory_order_relaxed)) {
        Txn t = db.begin(TxnKind::Update, EpsilonSpec::exporting(100));
        const Key a = rng.uniform(kAccounts);
        Key b = rng.uniform(kAccounts);
        while (b == a) b = rng.uniform(kAccounts);
        const Value d = 1 + Value(rng.uniform(40));
        if (!t.add(a, -d).ok() || !t.add(b, +d).ok() || !t.commit().ok()) {
          t.abort();
        }
      }
    });
  }

  for (int round = 0; round < 20; ++round) {
    for (;;) {
      Txn q = db.begin(TxnKind::Query, EpsilonSpec::importing(kEps));
      Value sum = 0;
      bool failed = false;
      for (int i = 0; i < kAccounts; ++i) {
        Result<Value> v = q.read(i);
        if (!v.ok()) {
          failed = true;
          break;
        }
        sum += v.value();
      }
      if (failed) {
        q.abort();
        continue;
      }
      const Value z = q.fuzziness();
      ASSERT_TRUE(q.commit().ok());
      const Value err = distance(sum, kInitial * kAccounts);
      // Realized inconsistency never exceeds the accounted fuzziness, which
      // never exceeds the import limit.
      EXPECT_LE(err, z + 1e-9);
      EXPECT_LE(z, kEps + 1e-9);
      break;
    }
  }
  stop = true;
  for (auto& t : writers) t.join();
}

}  // namespace
}  // namespace atp
