// Optimistic divergence control: lock-free query reads validated at commit
// against the import limit; 2PL updates throughout.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "engine/executor.h"
#include "sched/database.h"
#include "workload/banking.h"

namespace atp {
namespace {

using namespace std::chrono_literals;

DatabaseOptions odc_options() {
  DatabaseOptions o;
  o.scheduler = SchedulerKind::ODC;
  o.lock_timeout = std::chrono::milliseconds(500);
  return o;
}

TEST(OdcTxn, QueryReadsWithoutLocks) {
  Database db(odc_options());
  db.load(1, 100);
  Txn q = db.begin(TxnKind::Query, EpsilonSpec::importing(0));
  ASSERT_TRUE(q.read(1).ok());
  // No S lock was taken: an update can grab X immediately.
  Txn u = db.begin(TxnKind::Update, EpsilonSpec::serializable());
  EXPECT_TRUE(u.write(1, 150).ok());
  ASSERT_TRUE(u.commit().ok());
  // The query read before the change: drift 50 > limit 0 -> refused.
  const Status s = q.commit();
  EXPECT_EQ(s.code(), ErrorCode::kEpsilonExceeded);
  EXPECT_FALSE(q.active());
}

TEST(OdcTxn, ValidationPassesWithinBudget) {
  Database db(odc_options());
  db.load(1, 100);
  Txn q = db.begin(TxnKind::Query, EpsilonSpec::importing(60));
  ASSERT_TRUE(q.read(1).ok());
  {
    Txn u = db.begin(TxnKind::Update, EpsilonSpec::serializable());
    ASSERT_TRUE(u.add(1, 50).ok());
    ASSERT_TRUE(u.commit().ok());
  }
  EXPECT_TRUE(q.commit().ok());       // drift 50 <= 60
  EXPECT_EQ(q.fuzziness(), 50);       // charged as import
}

TEST(OdcTxn, StableReadsValidateForFree) {
  Database db(odc_options());
  db.load(1, 100);
  db.load(2, 200);
  Txn q = db.begin(TxnKind::Query, EpsilonSpec::importing(0));
  ASSERT_TRUE(q.read(1).ok());
  ASSERT_TRUE(q.read(2).ok());
  EXPECT_TRUE(q.commit().ok());  // nothing moved: zero drift at eps 0
  EXPECT_EQ(q.fuzziness(), 0);
}

TEST(OdcTxn, QueryNeverSeesDirtyData) {
  Database db(odc_options());
  db.load(1, 100);
  Txn u = db.begin(TxnKind::Update, EpsilonSpec::serializable());
  ASSERT_TRUE(u.write(1, 999).ok());  // staged, uncommitted
  Txn q = db.begin(TxnKind::Query, EpsilonSpec::importing(1000));
  Result<Value> v = q.read(1);  // would block under CC; here: committed value
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 100);
  u.abort();
  EXPECT_TRUE(q.commit().ok());
}

TEST(OdcTxn, UpdatesStaySerializableAmongThemselves) {
  Database db(odc_options());
  db.load(1, 100);
  Txn u1 = db.begin(TxnKind::Update, EpsilonSpec::serializable());
  ASSERT_TRUE(u1.write(1, 150).ok());
  Txn u2 = db.begin(TxnKind::Update, EpsilonSpec::serializable());
  EXPECT_EQ(u2.write(1, 160).code(), ErrorCode::kTimeout);  // plain 2PL
  u2.abort();
  ASSERT_TRUE(u1.commit().ok());
}

TEST(OdcTxn, DriftAccumulatesAcrossKeys) {
  Database db(odc_options());
  db.load(1, 100);
  db.load(2, 100);
  Txn q = db.begin(TxnKind::Query, EpsilonSpec::importing(70));
  ASSERT_TRUE(q.read(1).ok());
  ASSERT_TRUE(q.read(2).ok());
  {
    Txn u = db.begin(TxnKind::Update, EpsilonSpec::serializable());
    ASSERT_TRUE(u.add(1, 40).ok());
    ASSERT_TRUE(u.add(2, -40).ok());
    ASSERT_TRUE(u.commit().ok());
  }
  // Per-key drifts add up (40 + 40 = 80 > 70) even though the *sum* the
  // query computed is unchanged -- the validation is conservative.
  EXPECT_EQ(q.commit().code(), ErrorCode::kEpsilonExceeded);
}

TEST(OdcGuarantee, ConcurrentAuditsStayWithinEpsilon) {
  Database db(odc_options());
  constexpr int kAccounts = 8;
  constexpr Value kInitial = 1000;
  constexpr Value kEps = 150;
  for (int i = 0; i < kAccounts; ++i) db.load(i, kInitial);

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    Rng rng(3);
    while (!stop.load(std::memory_order_relaxed)) {
      Txn t = db.begin(TxnKind::Update, EpsilonSpec::serializable());
      const Key a = rng.uniform(kAccounts);
      Key b = rng.uniform(kAccounts);
      while (b == a) b = rng.uniform(kAccounts);
      const Value d = 1 + Value(rng.uniform(40));
      if (!t.add(a, -d).ok() || !t.add(b, +d).ok() || !t.commit().ok()) {
        t.abort();
      }
    }
  });

  for (int round = 0; round < 20; ++round) {
    for (;;) {  // retry validation failures
      Txn q = db.begin(TxnKind::Query, EpsilonSpec::importing(kEps));
      Value sum = 0;
      for (int i = 0; i < kAccounts; ++i) sum += q.read(i).value_or(0);
      if (!q.commit().ok()) continue;
      const Value err = distance(sum, kInitial * kAccounts);
      EXPECT_LE(err, q.fuzziness() + 1e-9);
      EXPECT_LE(q.fuzziness(), kEps + 1e-9);
      break;
    }
  }
  stop = true;
  writer.join();
}

TEST(OdcEngine, BankingMixRunsUnderOdc) {
  BankingConfig cfg;
  cfg.branches = 2;
  cfg.accounts_per_branch = 12;
  cfg.branch_audit_fraction = 0.2;
  cfg.global_audit_fraction = 0.1;
  cfg.update_epsilon = 600;
  cfg.query_epsilon = 1500;
  const Workload w = make_banking(cfg, 120, 77);

  const MethodConfig method = MethodConfig::baseline_odc();
  auto plan = ExecutionPlan::build(w.types, method);
  ASSERT_TRUE(plan.ok());
  Database db(Executor::database_options(method));
  w.load_into(db);
  ExecutorOptions opts;
  opts.workers = 4;
  const ExecutorReport r = Executor::run(db, plan.value(), w.instances, opts);
  EXPECT_EQ(r.committed, w.instances.size());
  EXPECT_EQ(r.budget_violations, 0u);
  EXPECT_LE(r.query_error.max, cfg.query_epsilon + 1e-9);

  Value sum = 0;
  for (const auto& [k, v] : db.store().snapshot_committed()) sum += v;
  EXPECT_EQ(sum, w.total_money);
}

}  // namespace
}  // namespace atp
