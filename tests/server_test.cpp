// Session + admission lifecycle tests for the server front-end.
//
// Most suites run over SimTransport/SimByteChannel -- the deterministic
// SimNetwork backend -- so session behaviour (handshake, admission grants,
// disconnect teardown, budget release) is tested without sockets; one suite
// drives the real TcpTransport end-to-end with concurrent clients.
#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "obs/metrics_registry.h"
#include "sched/database.h"
#include "server/client.h"
#include "server/server.h"
#include "server/session.h"
#include "server/transport.h"

namespace atp::server {
namespace {

using namespace std::chrono_literals;

constexpr SiteId kServerSite = 0;

NetworkOptions fast_net() {
  NetworkOptions o;
  o.one_way_latency = std::chrono::microseconds(200);
  return o;
}

/// Spin until `pred` holds (teardown and gauge updates are asynchronous).
bool eventually(const std::function<bool()>& pred,
                std::chrono::milliseconds limit = 2000ms) {
  const auto deadline = std::chrono::steady_clock::now() + limit;
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(2ms);
  }
  return pred();
}

Client sim_client(SimNetwork& net, SiteId site) {
  return Client(std::make_unique<SimByteChannel>(net, site, kServerSite));
}

TEST(Server, HappyPathOverSimNetwork) {
  SimNetwork net(4, fast_net());
  Database db(DatabaseOptions{});
  db.load(1, 100);
  db.load(2, 100);
  AtpServer srv(db, std::make_unique<SimTransport>(net, kServerSite), {});
  ASSERT_TRUE(srv.ok());

  Client c = sim_client(net, 1);
  ASSERT_TRUE(c.hello("gold").ok());
  EXPECT_EQ(c.class_info().name, "gold");
  EXPECT_EQ(c.class_info().import_ceiling, 0);

  auto t = c.begin(TxnKind::Update);
  ASSERT_TRUE(t.ok());
  ASSERT_TRUE(c.add(t.value(), 1, -30).ok());
  ASSERT_TRUE(c.add(t.value(), 2, +30).ok());
  auto z = c.commit(t.value());
  ASSERT_TRUE(z.ok());
  EXPECT_EQ(z.value(), 0);  // gold is serializable: no fuzziness

  auto q = c.begin(TxnKind::Query);
  ASSERT_TRUE(q.ok());
  auto v = c.read(q.value(), 1);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 70);
  ASSERT_TRUE(c.commit(q.value()).ok());
  EXPECT_TRUE(c.ping().ok());
  c.close();
  srv.stop();
}

TEST(Server, ClassesMapToDistinctEpsilonSpecs) {
  SimNetwork net(4, fast_net());
  Database db(DatabaseOptions{});
  db.load(1, 100);
  AtpServer srv(db, std::make_unique<SimTransport>(net, kServerSite), {});

  // Bronze may import hugely; asking 200 is within its ceiling.
  Client bronze = sim_client(net, 1);
  ASSERT_TRUE(bronze.hello("bronze").ok());
  auto q = bronze.begin(TxnKind::Query, /*import_limit=*/200);
  ASSERT_TRUE(q.ok());
  ASSERT_TRUE(bronze.abort(q.value()).ok());

  // Gold's ceiling is 0: the same request is refused -- the class did not
  // buy that much inconsistency.
  Client gold = sim_client(net, 2);
  ASSERT_TRUE(gold.hello("gold").ok());
  auto over = gold.begin(TxnKind::Query, /*import_limit=*/50);
  ASSERT_FALSE(over.ok());
  EXPECT_EQ(over.status().code(), ErrorCode::kEpsilonExceeded);
  // But the serializable default works.
  auto zero = gold.begin(TxnKind::Query);
  ASSERT_TRUE(zero.ok());
  ASSERT_TRUE(gold.abort(zero.value()).ok());

  // Silver's grant is metered against the class's concurrent budget.
  Client silver = sim_client(net, 3);
  ASSERT_TRUE(silver.hello("silver").ok());
  auto u = silver.begin(TxnKind::Update, -1, /*export_limit=*/100);
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(srv.admission().outstanding("silver"), 100);
  ASSERT_TRUE(silver.commit(u.value()).ok());
  EXPECT_EQ(srv.admission().outstanding("silver"), 0);

  // Unknown classes are turned away at the handshake.
  Client nobody = sim_client(net, 1);
  EXPECT_EQ(nobody.hello("platinum").code(), ErrorCode::kNotFound);
  srv.stop();
}

TEST(Server, MidTransactionDisconnectAbortsAndReleasesEverything) {
  SimNetwork net(4, fast_net());
  Database db(DatabaseOptions{});
  db.load(7, 100);
  AtpServer srv(db, std::make_unique<SimTransport>(net, kServerSite), {});

  {
    Client doomed = sim_client(net, 1);
    ASSERT_TRUE(doomed.hello("silver").ok());
    auto t = doomed.begin(TxnKind::Update, -1, /*export_limit=*/250);
    ASSERT_TRUE(t.ok());
    ASSERT_TRUE(doomed.add(t.value(), 7, -10).ok());  // holds an X lock
    EXPECT_EQ(srv.admission().outstanding("silver"), 250);
    doomed.close();  // vanish mid-transaction
  }

  // Teardown must abort the transaction: eps budget back, lock released.
  EXPECT_TRUE(eventually(
      [&] { return srv.admission().outstanding("silver") == 0; }));
  EXPECT_TRUE(eventually([&] { return srv.active_sessions() == 0; }));

  Client next = sim_client(net, 2);
  ASSERT_TRUE(next.hello("gold").ok());
  auto t = next.begin(TxnKind::Update);
  ASSERT_TRUE(t.ok());
  ASSERT_TRUE(next.add(t.value(), 7, -5).ok());  // same key: lock is free
  ASSERT_TRUE(next.commit(t.value()).ok());
  auto q = next.begin(TxnKind::Query);
  ASSERT_TRUE(q.ok());
  auto v = next.read(q.value(), 7);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 95);  // the disconnected -10 never committed
  ASSERT_TRUE(next.commit(q.value()).ok());
  srv.stop();
}

TEST(Server, LowBudgetClassRejectedWhileHighBudgetProceeds) {
  SimNetwork net(5, fast_net());
  Database db(DatabaseOptions{});
  ServerOptions so;
  so.classes = {
      {"tight", 100, 100, /*concurrent_budget=*/100, 8},
      {"rich", 100, 100, kInfiniteLimit, 8},
  };
  AtpServer srv(db, std::make_unique<SimTransport>(net, kServerSite),
                std::move(so));

  Client a = sim_client(net, 1);
  ASSERT_TRUE(a.hello("tight").ok());
  auto first = a.begin(TxnKind::Update, -1, 100);  // consumes the budget
  ASSERT_TRUE(first.ok());

  Client b = sim_client(net, 2);
  ASSERT_TRUE(b.hello("tight").ok());
  auto second = b.begin(TxnKind::Update, -1, 100);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), ErrorCode::kUnavailable);

  Client c = sim_client(net, 3);
  ASSERT_TRUE(c.hello("rich").ok());
  auto rich = c.begin(TxnKind::Update, -1, 100);  // unmetered class
  ASSERT_TRUE(rich.ok());
  ASSERT_TRUE(c.abort(rich.value()).ok());

  ASSERT_TRUE(a.abort(first.value()).ok());  // budget returns
  auto retry = b.begin(TxnKind::Update, -1, 100);
  ASSERT_TRUE(retry.ok());
  ASSERT_TRUE(b.abort(retry.value()).ok());
  srv.stop();
}

TEST(Server, SessionWindowBackpressureAnswersImmediately) {
  // Unit-level: drive a Session directly so the window arithmetic is
  // deterministic (no worker racing the feed).
  Database db(DatabaseOptions{});
  AdmissionController ac({{"w", 100, 100, kInfiniteLimit, /*window=*/2}});
  obs::MetricsRegistry reg;
  ServerCounters counters;
  counters.window_rejects = &reg.counter("srv.window_rejects");
  Session s(1, db, ac, counters);

  WireMessage hello;
  hello.kind = MsgKind::kHello;
  hello.text = "w";
  auto fed = s.feed(encode_frame(hello));
  EXPECT_FALSE(fed.fatal);
  auto req = s.take_next();
  ASSERT_TRUE(req.has_value());
  (void)s.execute(req->msg);
  EXPECT_FALSE(s.finish_one());

  // Five pipelined pings against a window of 2: three immediate rejections.
  std::string burst;
  for (int i = 0; i < 5; ++i) {
    WireMessage ping;
    ping.kind = MsgKind::kPing;
    ping.seq = std::uint64_t(100 + i);
    encode_frame(ping, &burst);
  }
  fed = s.feed(burst);
  EXPECT_FALSE(fed.fatal);
  EXPECT_EQ(reg.counter("srv.window_rejects").value(), 3u);
  FrameReader replies;
  replies.feed(fed.immediate_replies);
  std::size_t rejected = 0;
  while (auto r = replies.next()) {
    EXPECT_EQ(r->kind, MsgKind::kError);
    EXPECT_EQ(ErrorCode(r->op), ErrorCode::kUnavailable);
    ++rejected;
  }
  EXPECT_EQ(rejected, 3u);
  // The two queued requests still execute in order.
  for (int i = 0; i < 2; ++i) {
    auto next = s.take_next();
    ASSERT_TRUE(next.has_value());
    EXPECT_EQ(next->msg.seq, std::uint64_t(100 + i));
    (void)s.execute(next->msg);
    (void)s.finish_one();
  }
  EXPECT_FALSE(s.take_next().has_value());
  s.close();
}

TEST(Server, ProtocolErrorDropsConnection) {
  SimNetwork net(3, fast_net());
  Database db(DatabaseOptions{});
  obs::MetricsRegistry reg;
  ServerOptions so;
  so.metrics = &reg;
  AtpServer srv(db, std::make_unique<SimTransport>(net, kServerSite),
                std::move(so));

  SimClientChannel ch(net, 1, kServerSite);
  ch.connect();
  ASSERT_TRUE(ch.send_bytes("this is not a frame at all, not even close"));
  // The server must close us; recv drains until the close notification.
  EXPECT_TRUE(eventually([&] {
    (void)ch.recv(10ms);
    return ch.closed_by_server();
  }));
  EXPECT_TRUE(eventually([&] { return srv.active_sessions() == 0; }));
  const auto snap = reg.snapshot();
  const obs::Sample* errs = snap.find("srv.protocol_errors");
  ASSERT_NE(errs, nullptr);
  EXPECT_GE(errs->value, 1);
  srv.stop();
}

TEST(Server, TcpConcurrentClientsAndCounters) {
  Database db(DatabaseOptions{});
  for (Key k = 0; k < 16; ++k) db.load(k, 1000);
  obs::MetricsRegistry reg;
  ServerOptions so;
  so.metrics = &reg;
  so.workers = 4;
  AtpServer srv(db, std::make_unique<TcpTransport>(0), std::move(so));
  ASSERT_TRUE(srv.ok());
  ASSERT_NE(srv.port(), 0);

  constexpr std::size_t kClients = 4, kTxns = 25;
  std::vector<std::size_t> committed(kClients, 0);
  {
    std::vector<std::thread> threads;
    for (std::size_t i = 0; i < kClients; ++i) {
      threads.emplace_back([&, i] {
        Client c(std::make_unique<TcpByteChannel>("127.0.0.1", srv.port()));
        ASSERT_TRUE(c.hello("bronze").ok());
        for (std::size_t n = 0; n < kTxns; ++n) {
          auto t = c.begin(TxnKind::Update);
          if (!t.ok()) continue;
          const Key a = Key((i * 7 + n) % 16);
          const Key b = Key((a + 1) % 16);
          if (c.add(t.value(), a, -1).ok() && c.add(t.value(), b, +1).ok() &&
              c.commit(t.value()).ok()) {
            ++committed[i];
          }
        }
        c.close();
      });
    }
    for (auto& t : threads) t.join();
  }
  std::size_t total = 0;
  for (const std::size_t n : committed) total += n;
  EXPECT_GT(total, 0u);
  EXPECT_TRUE(eventually([&] { return srv.active_sessions() == 0; }));

  const auto snap = reg.snapshot();
  const obs::Sample* accepted = snap.find("srv.sessions.accepted");
  ASSERT_NE(accepted, nullptr);
  EXPECT_EQ(accepted->value, double(kClients));
  const obs::Sample* commits = snap.find("srv.txn.committed");
  ASSERT_NE(commits, nullptr);
  EXPECT_EQ(commits->value, double(total));
  const obs::Sample* granted = snap.find("srv.admission.granted.bronze");
  ASSERT_NE(granted, nullptr);
  EXPECT_GE(granted->value, double(total));
  srv.stop();
}

TEST(Server, PerClassRequestLatencyHistogramsPopulate) {
  SimNetwork net(4, fast_net());
  Database db(DatabaseOptions{});
  db.load(1, 100);
  obs::MetricsRegistry reg;
  ServerOptions so;
  so.metrics = &reg;
  AtpServer srv(db, std::make_unique<SimTransport>(net, kServerSite),
                std::move(so));

  Client gold = sim_client(net, 1);
  ASSERT_TRUE(gold.hello("gold").ok());
  auto t = gold.begin(TxnKind::Update);
  ASSERT_TRUE(t.ok());
  ASSERT_TRUE(gold.add(t.value(), 1, -1).ok());
  ASSERT_TRUE(gold.commit(t.value()).ok());
  Client bronze = sim_client(net, 2);
  ASSERT_TRUE(bronze.hello("bronze").ok());
  EXPECT_TRUE(bronze.ping().ok());

  const auto snap = reg.snapshot();
  const obs::Sample* g = snap.find("srv.request_latency.gold");
  ASSERT_NE(g, nullptr);
  // hello + begin + add + commit (hello resolves the class before the
  // worker records it, so it lands in the class's histogram too).
  EXPECT_EQ(g->summary.count, 4u);
  EXPECT_GE(g->summary.max, 0.0);
  const obs::Sample* b = snap.find("srv.request_latency.bronze");
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->summary.count, 2u);  // hello + ping
  // A class nobody used exists but stays empty.
  const obs::Sample* s = snap.find("srv.request_latency.silver");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->summary.count, 0u);
  srv.stop();
}

TEST(Server, SlowRequestLogFiresAboveThreshold) {
  SimNetwork net(4, fast_net());
  Database db(DatabaseOptions{});
  db.load(1, 100);
  obs::MetricsRegistry reg;
  std::mutex slow_mu;
  std::vector<SlowRequest> slow;
  ServerOptions so;
  so.metrics = &reg;
  so.slow_request_threshold = std::chrono::microseconds(1);  // everything
  so.slow_log = [&](const SlowRequest& r) {
    std::lock_guard lock(slow_mu);
    slow.push_back(r);
  };
  AtpServer srv(db, std::make_unique<SimTransport>(net, kServerSite),
                std::move(so));

  Client c = sim_client(net, 1);
  ASSERT_TRUE(c.hello("gold").ok());
  auto t = c.begin(TxnKind::Update);
  ASSERT_TRUE(t.ok());
  ASSERT_TRUE(c.add(t.value(), 1, -1).ok());
  ASSERT_TRUE(c.commit(t.value()).ok());

  {
    std::lock_guard lock(slow_mu);
    ASSERT_EQ(slow.size(), 4u);  // hello, begin, add, commit
    EXPECT_STREQ(slow[0].request, "hello");
    EXPECT_STREQ(slow[0].outcome, "hello-ok");
    EXPECT_EQ(slow[0].client_class, "gold");
    EXPECT_STREQ(slow[1].request, "begin");
    EXPECT_STREQ(slow[1].outcome, "ok");
    EXPECT_EQ(slow[1].error_code, 0u);
    EXPECT_GE(slow[1].queued_us + slow[1].exec_us, 1);
    EXPECT_STREQ(slow[3].request, "commit");
    EXPECT_EQ(slow[3].txn, t.value());
  }

  const auto snap = reg.snapshot();
  const obs::Sample* n = snap.find("srv.slow_requests");
  ASSERT_NE(n, nullptr);
  EXPECT_EQ(n->value, 4.0);
  srv.stop();
}

TEST(Server, SubThresholdRequestsAreNotLoggedSlow) {
  SimNetwork net(3, fast_net());
  Database db(DatabaseOptions{});
  std::atomic<int> fired{0};
  ServerOptions so;
  so.slow_request_threshold = std::chrono::seconds(10);
  so.slow_log = [&](const SlowRequest&) { ++fired; };
  AtpServer srv(db, std::make_unique<SimTransport>(net, kServerSite),
                std::move(so));
  Client c = sim_client(net, 1);
  ASSERT_TRUE(c.hello("gold").ok());
  EXPECT_TRUE(c.ping().ok());
  c.close();
  srv.stop();
  EXPECT_EQ(fired.load(), 0);
}

TEST(Server, SimNetworkPublishesTrafficMetrics) {
  obs::MetricsRegistry reg;  // must outlive the network (collector)
  SimNetwork net(3, fast_net());
  net.attach_metrics(&reg);
  Database db(DatabaseOptions{});
  AtpServer srv(db, std::make_unique<SimTransport>(net, kServerSite), {});
  Client c = sim_client(net, 1);
  ASSERT_TRUE(c.hello("gold").ok());
  EXPECT_TRUE(c.ping().ok());
  c.close();
  srv.stop();
  const auto snap = reg.snapshot();
  const obs::Sample* sent = snap.find("net.sim.sent");
  ASSERT_NE(sent, nullptr);
  EXPECT_GT(sent->value, 0);
  const obs::Sample* delivered = snap.find("net.sim.delivered");
  ASSERT_NE(delivered, nullptr);
  EXPECT_GT(delivered->value, 0);
}

}  // namespace
}  // namespace atp::server
