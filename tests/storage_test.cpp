#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "storage/store.h"

namespace atp {
namespace {

TEST(Store, LoadAndReadCommitted) {
  Store store;
  store.load(1, 100);
  store.load(2, 200);
  EXPECT_EQ(store.read_committed(1).value(), 100);
  EXPECT_EQ(store.read_committed(2).value(), 200);
  EXPECT_EQ(store.size(), 2u);
}

TEST(Store, MissingKeyIsNotFound) {
  Store store;
  EXPECT_EQ(store.read_committed(99).status().code(), ErrorCode::kNotFound);
  EXPECT_EQ(store.read_latest(99).status().code(), ErrorCode::kNotFound);
  EXPECT_FALSE(store.dirty_writer(99).has_value());
  EXPECT_EQ(store.pending_delta(99), 0);
}

TEST(Store, WriteStagesDirtyValue) {
  Store store;
  store.load(1, 100);
  ASSERT_TRUE(store.write(7, 1, 150).ok());
  EXPECT_EQ(store.read_committed(1).value(), 100);  // committed unchanged
  EXPECT_EQ(store.read_latest(1).value(), 150);     // dirty visible to DC
  EXPECT_EQ(store.dirty_writer(1), std::optional<TxnId>(7));
  EXPECT_EQ(store.pending_delta(1), 50);
}

TEST(Store, CommitPromotesDirty) {
  Store store;
  store.load(1, 100);
  ASSERT_TRUE(store.write(7, 1, 150).ok());
  store.commit_key(7, 1);
  EXPECT_EQ(store.read_committed(1).value(), 150);
  EXPECT_FALSE(store.dirty_writer(1).has_value());
  EXPECT_EQ(store.pending_delta(1), 0);
}

TEST(Store, AbortDiscardsDirty) {
  Store store;
  store.load(1, 100);
  ASSERT_TRUE(store.write(7, 1, 150).ok());
  store.abort_key(7, 1);
  EXPECT_EQ(store.read_committed(1).value(), 100);
  EXPECT_EQ(store.read_latest(1).value(), 100);
}

TEST(Store, SecondWriterIsRejected) {
  Store store;
  store.load(1, 100);
  ASSERT_TRUE(store.write(7, 1, 150).ok());
  const Status s = store.write(8, 1, 160);
  EXPECT_EQ(s.code(), ErrorCode::kFailedPrecondition);
  // Original dirty value intact.
  EXPECT_EQ(store.read_latest(1).value(), 150);
}

TEST(Store, SameWriterMayRewrite) {
  Store store;
  store.load(1, 100);
  ASSERT_TRUE(store.write(7, 1, 150).ok());
  ASSERT_TRUE(store.write(7, 1, 170).ok());
  EXPECT_EQ(store.read_latest(1).value(), 170);
  EXPECT_EQ(store.pending_delta(1), 70);
}

TEST(Store, ForeignCommitAndAbortAreNoOps) {
  Store store;
  store.load(1, 100);
  ASSERT_TRUE(store.write(7, 1, 150).ok());
  store.commit_key(8, 1);  // not the owner
  EXPECT_EQ(store.read_committed(1).value(), 100);
  store.abort_key(8, 1);  // not the owner
  EXPECT_EQ(store.read_latest(1).value(), 150);
}

TEST(Store, WriteToUnknownKeyCreatesCell) {
  Store store;
  ASSERT_TRUE(store.write(7, 42, 5).ok());
  EXPECT_EQ(store.read_latest(42).value(), 5);
  store.commit_key(7, 42);
  EXPECT_EQ(store.read_committed(42).value(), 5);
}

TEST(Store, SnapshotSeesOnlyCommitted) {
  Store store;
  store.load(1, 100);
  store.load(2, 200);
  ASSERT_TRUE(store.write(7, 1, 999).ok());
  const auto snap = store.snapshot_committed();
  EXPECT_EQ(snap.at(1), 100);
  EXPECT_EQ(snap.at(2), 200);
}

TEST(Store, CrashDropsAllDirty) {
  Store store;
  store.load(1, 100);
  store.load(2, 200);
  ASSERT_TRUE(store.write(7, 1, 150).ok());
  ASSERT_TRUE(store.write(8, 2, 250).ok());
  store.crash();
  EXPECT_EQ(store.read_latest(1).value(), 100);
  EXPECT_EQ(store.read_latest(2).value(), 200);
  EXPECT_FALSE(store.dirty_writer(1).has_value());
}

TEST(Store, CrashSparesPreparedSurvivors) {
  Store store;
  store.load(1, 100);
  store.load(2, 200);
  ASSERT_TRUE(store.write(7, 1, 150).ok());  // prepared
  ASSERT_TRUE(store.write(8, 2, 250).ok());  // not prepared
  const std::unordered_set<TxnId> survivors{7};
  store.crash(&survivors);
  EXPECT_EQ(store.read_latest(1).value(), 150);  // survived
  EXPECT_EQ(store.read_latest(2).value(), 200);  // lost
}

TEST(Store, ConcurrentDisjointWritersAreSafe) {
  Store store;
  constexpr int kKeys = 256;
  for (int k = 0; k < kKeys; ++k) store.load(k, 0);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int k = t; k < kKeys; k += 4) {
        ASSERT_TRUE(store.write(TxnId(t + 1), k, k * 10).ok());
        store.commit_key(TxnId(t + 1), k);
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int k = 0; k < kKeys; ++k) {
    EXPECT_EQ(store.read_committed(k).value(), k * 10);
  }
}

}  // namespace
}  // namespace atp
