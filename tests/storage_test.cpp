#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "storage/store.h"

namespace atp {
namespace {

TEST(Store, LoadAndReadCommitted) {
  Store store;
  store.load(1, 100);
  store.load(2, 200);
  EXPECT_EQ(store.read_committed(1).value(), 100);
  EXPECT_EQ(store.read_committed(2).value(), 200);
  EXPECT_EQ(store.size(), 2u);
}

TEST(Store, MissingKeyIsNotFound) {
  Store store;
  EXPECT_EQ(store.read_committed(99).status().code(), ErrorCode::kNotFound);
  EXPECT_EQ(store.read_latest(99).status().code(), ErrorCode::kNotFound);
  EXPECT_FALSE(store.dirty_writer(99).has_value());
  EXPECT_EQ(store.pending_delta(99), 0);
}

TEST(Store, WriteStagesDirtyValue) {
  Store store;
  store.load(1, 100);
  ASSERT_TRUE(store.write(7, 1, 150).ok());
  EXPECT_EQ(store.read_committed(1).value(), 100);  // committed unchanged
  EXPECT_EQ(store.read_latest(1).value(), 150);     // dirty visible to DC
  EXPECT_EQ(store.dirty_writer(1), std::optional<TxnId>(7));
  EXPECT_EQ(store.pending_delta(1), 50);
}

TEST(Store, CommitPromotesDirty) {
  Store store;
  store.load(1, 100);
  ASSERT_TRUE(store.write(7, 1, 150).ok());
  store.commit_key(7, 1);
  EXPECT_EQ(store.read_committed(1).value(), 150);
  EXPECT_FALSE(store.dirty_writer(1).has_value());
  EXPECT_EQ(store.pending_delta(1), 0);
}

TEST(Store, AbortDiscardsDirty) {
  Store store;
  store.load(1, 100);
  ASSERT_TRUE(store.write(7, 1, 150).ok());
  store.abort_key(7, 1);
  EXPECT_EQ(store.read_committed(1).value(), 100);
  EXPECT_EQ(store.read_latest(1).value(), 100);
}

TEST(Store, SecondWriterIsRejected) {
  Store store;
  store.load(1, 100);
  ASSERT_TRUE(store.write(7, 1, 150).ok());
  const Status s = store.write(8, 1, 160);
  EXPECT_EQ(s.code(), ErrorCode::kFailedPrecondition);
  // Original dirty value intact.
  EXPECT_EQ(store.read_latest(1).value(), 150);
}

TEST(Store, SameWriterMayRewrite) {
  Store store;
  store.load(1, 100);
  ASSERT_TRUE(store.write(7, 1, 150).ok());
  ASSERT_TRUE(store.write(7, 1, 170).ok());
  EXPECT_EQ(store.read_latest(1).value(), 170);
  EXPECT_EQ(store.pending_delta(1), 70);
}

TEST(Store, ForeignCommitAndAbortAreNoOps) {
  Store store;
  store.load(1, 100);
  ASSERT_TRUE(store.write(7, 1, 150).ok());
  store.commit_key(8, 1);  // not the owner
  EXPECT_EQ(store.read_committed(1).value(), 100);
  store.abort_key(8, 1);  // not the owner
  EXPECT_EQ(store.read_latest(1).value(), 150);
}

TEST(Store, WriteToUnknownKeyCreatesCell) {
  Store store;
  ASSERT_TRUE(store.write(7, 42, 5).ok());
  EXPECT_EQ(store.read_latest(42).value(), 5);
  store.commit_key(7, 42);
  EXPECT_EQ(store.read_committed(42).value(), 5);
}

TEST(Store, SnapshotSeesOnlyCommitted) {
  Store store;
  store.load(1, 100);
  store.load(2, 200);
  ASSERT_TRUE(store.write(7, 1, 999).ok());
  const auto snap = store.snapshot_committed();
  EXPECT_EQ(snap.at(1), 100);
  EXPECT_EQ(snap.at(2), 200);
}

TEST(Store, CrashDropsAllDirty) {
  Store store;
  store.load(1, 100);
  store.load(2, 200);
  ASSERT_TRUE(store.write(7, 1, 150).ok());
  ASSERT_TRUE(store.write(8, 2, 250).ok());
  store.crash();
  EXPECT_EQ(store.read_latest(1).value(), 100);
  EXPECT_EQ(store.read_latest(2).value(), 200);
  EXPECT_FALSE(store.dirty_writer(1).has_value());
}

TEST(Store, CrashSparesPreparedSurvivors) {
  Store store;
  store.load(1, 100);
  store.load(2, 200);
  ASSERT_TRUE(store.write(7, 1, 150).ok());  // prepared
  ASSERT_TRUE(store.write(8, 2, 250).ok());  // not prepared
  const std::unordered_set<TxnId> survivors{7};
  store.crash(&survivors);
  EXPECT_EQ(store.read_latest(1).value(), 150);  // survived
  EXPECT_EQ(store.read_latest(2).value(), 200);  // lost
}

TEST(Store, LoadOverDirtyCellIsRefused) {
  // Regression: Store::load used to reset dirty_owner on an existing cell,
  // silently orphaning the in-flight writer -- its later commit_key became a
  // no-op and the update vanished.  Bulk-load over a dirty cell must fail
  // and leave the writer's staged state intact.
  Store store;
  store.load(1, 100);
  ASSERT_TRUE(store.write(7, 1, 150).ok());
  // Refused: txn 7 is mid-flight on this key.
  EXPECT_EQ(store.load(1, 500).code(), ErrorCode::kFailedPrecondition);
  EXPECT_EQ(store.dirty_writer(1), std::optional<TxnId>(7));
  store.commit_key(7, 1);
  EXPECT_EQ(store.read_committed(1).value(), 150);  // the write survived
}

// --- multi-version store ---------------------------------------------------

TEST(Mvcc, SnapshotReadIsIsolatedFromLaterCommits) {
  Store store;
  store.load(1, 100);
  const std::uint64_t snap = store.snapshot_acquire();
  ASSERT_TRUE(store.write(7, 1, 150).ok());
  store.commit_key(7, 1);
  ASSERT_TRUE(store.write(8, 1, 200).ok());
  store.commit_key(8, 1);
  // The snapshot keeps resolving at the version it pinned; the frontier
  // moved on independently.
  EXPECT_EQ(store.read_snapshot(1, snap).value().value, 100);
  const VersionRead latest = store.read_latest_versioned(1).value();
  EXPECT_EQ(latest.value, 200);
  EXPECT_GT(latest.seq, snap);
  store.snapshot_release(snap);
}

TEST(Mvcc, DepthCapBoundsRetainedVersionsAndAgesOutOldSnapshots) {
  Store store;
  store.load(1, 0);
  const std::uint64_t snap = store.snapshot_acquire();  // pins the chain
  for (int i = 1; i <= int(Store::kVersionDepth) + 8; ++i) {
    ASSERT_TRUE(store.write(TxnId(i), 1, i).ok());
    store.commit_key(TxnId(i), 1);
  }
  // The ring overwrites its oldest slot when full regardless of snapshots:
  // retention is capped at kVersionDepth, never unbounded.
  EXPECT_EQ(store.versions_retained(1), Store::kVersionDepth);
  // The pinned snapshot's version was among those overwritten: the read is
  // refused as "snapshot too old" (caller retries on a fresh snapshot), not
  // answered with a wrong newer version.
  EXPECT_EQ(store.read_snapshot(1, snap).status().code(), ErrorCode::kAborted);
  EXPECT_GE(store.mvcc_stats().snapshot_too_old, 1u);
  store.snapshot_release(snap);
}

TEST(Mvcc, EpochGcReclaimsVersionsNoSnapshotCanReach) {
  Store store;
  store.load(1, 0);
  const std::uint64_t snap = store.snapshot_acquire();
  for (int i = 1; i <= 5; ++i) {
    ASSERT_TRUE(store.write(TxnId(i), 1, i * 10).ok());
    store.commit_key(TxnId(i), 1);
  }
  // The live snapshot pins the whole chain: load + 5 commits all retained.
  EXPECT_EQ(store.versions_retained(1), 6u);
  store.snapshot_release(snap);
  // Next publication runs epoch GC on the cell; with no live snapshot every
  // version with a visible successor is unreachable -- only the newest stays.
  ASSERT_TRUE(store.write(TxnId(9), 1, 999).ok());
  store.commit_key(TxnId(9), 1);
  EXPECT_EQ(store.versions_retained(1), 1u);
  EXPECT_GE(store.mvcc_stats().gc_reclaimed, 5u);
  EXPECT_EQ(store.read_latest_versioned(1).value().value, 999);
}

TEST(Mvcc, ConcurrentSnapshotReadersNeverSeeTornVersions) {
  // Seqlock validation under contention: one committer climbs a single key
  // while readers take snapshots and resolve against it.  Every successful
  // read must be internally consistent (value matches the version's seq) and
  // must respect its snapshot; the only acceptable failure is the ring aging
  // the snapshot out.  Run under TSan via the tsan ctest label.
  Store store;
  store.load(1, 0);  // version seq 0, value 0: value == seq * 100 throughout
  constexpr int kCommits = 2000;
  std::atomic<bool> failed{false};
  std::thread writer([&] {
    for (int i = 1; i <= kCommits; ++i) {
      if (!store.write(1, 1, Value(i) * 100).ok()) failed = true;
      store.commit_key(1, 1);
    }
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      for (int i = 0; i < 500; ++i) {
        const std::uint64_t snap = store.snapshot_acquire();
        const auto r = store.read_snapshot(1, snap);
        if (r.ok()) {
          if (r.value().seq > snap) failed = true;
          if (r.value().value != Value(r.value().seq) * 100) failed = true;
        } else if (r.status().code() != ErrorCode::kAborted) {
          failed = true;
        }
        store.snapshot_release(snap);
      }
    });
  }
  writer.join();
  for (auto& th : readers) th.join();
  EXPECT_FALSE(failed.load());
  EXPECT_EQ(store.read_latest_versioned(1).value().value,
            Value(kCommits) * 100);
  EXPECT_EQ(store.mvcc_stats().live_snapshots, 0u);
}

TEST(Store, ConcurrentDisjointWritersAreSafe) {
  Store store;
  constexpr int kKeys = 256;
  for (int k = 0; k < kKeys; ++k) store.load(k, 0);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int k = t; k < kKeys; k += 4) {
        ASSERT_TRUE(store.write(TxnId(t + 1), k, k * 10).ok());
        store.commit_key(TxnId(t + 1), k);
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int k = 0; k < kKeys; ++k) {
    EXPECT_EQ(store.read_committed(k).value(), k * 10);
  }
}

}  // namespace
}  // namespace atp
