// Tests for atp-lint --mode=threads (analysis/thread_lint.h): each TH rule
// firing and staying quiet, the tokenizer's comment/string stripping, the
// manifest parser, and a golden rendering of a kitchen-sink fixture so the
// report text stays a stable contract (regenerate with ATP_REGEN_GOLDEN=1).
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/thread_lint.h"

#ifndef ATP_GOLDEN_DIR
#error "ATP_GOLDEN_DIR must point at tests/golden"
#endif

namespace atp {
namespace {

using namespace atp::analysis;

std::string golden_path(const std::string& name) {
  return std::string(ATP_GOLDEN_DIR) + "/" + name;
}

void expect_matches_golden(const std::string& actual,
                           const std::string& name) {
  const std::string path = golden_path(name);
  if (std::getenv("ATP_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::trunc);
    out << actual;
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    return;
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing golden file " << path
                         << " (regenerate with ATP_REGEN_GOLDEN=1)";
  std::ostringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), actual) << "golden mismatch for " << name;
}

const std::vector<std::string> kRanks = {"kWal", "kHistory", "kStoreMap"};

LintReport lint(const std::string& path, const std::string& src) {
  return lint_thread_source(path, src, kRanks);
}

std::vector<Rule> rules_of(const LintReport& r) {
  std::vector<Rule> out;
  for (const Diagnostic& d : r.diagnostics) out.push_back(d.rule);
  return out;
}

// ------------------------------------------------------------ manifest -----

TEST(ThreadLint, ParsesRankManifest) {
  const std::string manifest = R"(
    enum class LockRank : std::uint16_t {
      kWal = 210,      // write-ahead log
      kHistory = 220,
      // kRetired = 230,  -- commented-out entries must not parse
    };
  )";
  const std::vector<std::string> ranks = parse_rank_manifest(manifest);
  ASSERT_EQ(ranks.size(), 2u);
  EXPECT_EQ(ranks[0], "kWal");
  EXPECT_EQ(ranks[1], "kHistory");
}

// --------------------------------------------------------------- TH001 -----

TEST(ThreadLint, TH001FlagsRawPrimitives) {
  const LintReport r = lint("src/demo/a.h",
                            "std::mutex mu_;\n"
                            "std::shared_mutex map_mu_;\n"
                            "std::condition_variable cv_;\n");
  ASSERT_EQ(r.diagnostics.size(), 3u);
  for (const Diagnostic& d : r.diagnostics) EXPECT_EQ(d.rule, Rule::TH001);
  EXPECT_EQ(r.diagnostics[0].line, 1u);
  EXPECT_EQ(r.diagnostics[2].line, 3u);
}

TEST(ThreadLint, TH001IgnoresCommentsAndStrings) {
  const LintReport r = lint("src/demo/a.cpp",
                            "// std::mutex in a comment\n"
                            "/* std::condition_variable */\n"
                            "const char* s = \"std::mutex\";\n"
                            "const char* raw = R\"(std::shared_mutex)\";\n");
  EXPECT_TRUE(r.ok()) << r.to_text();
}

TEST(ThreadLint, AllowlistSuppressesTH001AndTH005Only) {
  const std::string src =
      "std::mutex mu_;\n"
      "void f() { mu_.lock(); }\n"
      "OrderedMutex<LockRank::kNope> m_;\n";
  const LintReport wrapped = lint("src/common/ordered_lock.h", src);
  // TH002 still applies even inside the wrapper implementation.
  ASSERT_EQ(wrapped.diagnostics.size(), 1u);
  EXPECT_EQ(wrapped.diagnostics[0].rule, Rule::TH002);
  const LintReport plain = lint("src/demo/a.h", src);
  EXPECT_EQ(plain.diagnostics.size(), 3u) << plain.to_text();  // +TH001 +TH005
}

// --------------------------------------------------------------- TH002 -----

TEST(ThreadLint, TH002RequiresManifestRanks) {
  const LintReport r =
      lint("src/demo/a.h",
           "OrderedMutex<LockRank::kWal> good_;\n"
           "atp::OrderedSharedMutex<atp::LockRank::kStoreMap> also_good_;\n"
           "OrderedMutex<LockRank::kBogus> unknown_;\n"
           "OrderedMutex<kWal> unqualified_;\n");
  ASSERT_EQ(r.diagnostics.size(), 2u) << r.to_text();
  EXPECT_EQ(r.diagnostics[0].rule, Rule::TH002);
  EXPECT_EQ(r.diagnostics[0].line, 3u);
  EXPECT_NE(r.diagnostics[0].message.find("kBogus"), std::string::npos);
  EXPECT_EQ(r.diagnostics[1].line, 4u);
}

// --------------------------------------------------------------- TH003 -----

TEST(ThreadLint, TH003FlagsLockingCollectors) {
  const LintReport r = lint("src/demo/a.cpp",
                            "void wire(Registry& reg) {\n"
                            "  reg.add_collector([&](Builder& b) {\n"
                            "    std::lock_guard lock(mu_);\n"
                            "    b.gauge(\"depth\", q_.size());\n"
                            "  });\n"
                            "}\n");
  ASSERT_EQ(r.diagnostics.size(), 1u) << r.to_text();
  EXPECT_EQ(r.diagnostics[0].rule, Rule::TH003);
  EXPECT_EQ(r.diagnostics[0].line, 3u);
}

TEST(ThreadLint, TH003SkipsDeclarationAndDefinition) {
  // The registry's own declaration/definition contain no lambda inside the
  // call parentheses, so the lock in the *definition body* is not a finding.
  const LintReport r =
      lint("src/demo/registry.cpp",
           "CollectorId add_collector(Collector fn);\n"
           "CollectorId Registry::add_collector(Collector fn) {\n"
           "  std::lock_guard lock(collector_mu_);\n"
           "  collectors_.push_back(std::move(fn));\n"
           "  return next_id_++;\n"
           "}\n");
  for (const Diagnostic& d : r.diagnostics) EXPECT_NE(d.rule, Rule::TH003);
}

TEST(ThreadLint, TH003AllowsLockFreeCollectors) {
  const LintReport r = lint("src/demo/a.cpp",
                            "reg.add_collector([&](Builder& b) {\n"
                            "  b.gauge(\"depth\", queue.depth());\n"
                            "});\n");
  EXPECT_TRUE(r.ok()) << r.to_text();
}

// --------------------------------------------------------------- TH004 -----

TEST(ThreadLint, TH004AcceptsJustifications) {
  const LintReport r = lint(
      "src/demo/a.cpp",
      "n_.fetch_add(1, std::memory_order_relaxed);  // relaxed-ok: tally\n"
      "// relaxed-ok: read after join\n"
      "auto v = n_.load(std::memory_order_relaxed);\n"
      "// relaxed-ok(begin): seqlock slots; epoch brackets provide order\n"
      "a_.store(1, std::memory_order_relaxed);\n"
      "b_.store(2, std::memory_order_relaxed);\n"
      "// relaxed-ok(end)\n");
  EXPECT_TRUE(r.ok()) << r.to_text();
}

TEST(ThreadLint, TH004FlagsUnjustifiedRelaxed) {
  const LintReport r = lint(
      "src/demo/a.cpp",
      "// relaxed-ok: too far away (four lines above the use)\n"
      "int a;\n"
      "int b;\n"
      "int c;\n"
      "n_.fetch_add(1, std::memory_order_relaxed);\n");
  ASSERT_EQ(r.diagnostics.size(), 1u) << r.to_text();
  EXPECT_EQ(r.diagnostics[0].rule, Rule::TH004);
  EXPECT_EQ(r.diagnostics[0].line, 5u);
}

// --------------------------------------------------------------- TH005 -----

TEST(ThreadLint, TH005FlagsBareMutexCallsOnly) {
  const LintReport r = lint("src/demo/a.cpp",
                            "void f() {\n"
                            "  mu_.lock();\n"
                            "  state_mu_->unlock();\n"
                            "  guard.unlock();\n"    // not mutex-ish: fine
                            "  map_mu_.lock_shared();\n"
                            "}\n");
  ASSERT_EQ(r.diagnostics.size(), 3u) << r.to_text();
  for (const Diagnostic& d : r.diagnostics) EXPECT_EQ(d.rule, Rule::TH005);
  EXPECT_EQ(r.diagnostics[0].line, 2u);
  EXPECT_EQ(r.diagnostics[1].line, 3u);
  EXPECT_EQ(r.diagnostics[2].line, 5u);
}

// ------------------------------------------------------------- golden ------

TEST(ThreadLint, KitchenSinkReportMatchesGolden) {
  const std::string fixture =
      "#pragma once\n"                                          // 1
      "#include <mutex>\n"                                      // 2
      "\n"                                                      // 3
      "struct Bad {\n"                                          // 4
      "  std::mutex mu_;\n"                                     // 5
      "  OrderedMutex<LockRank::kBogus> a_;\n"                  // 6
      "  OrderedMutex<LockRank::kWal> good_;\n"                 // 7
      "\n"                                                      // 8
      "  void f() {\n"                                          // 9
      "    mu_.lock();\n"                                       // 10
      "    n_.fetch_add(1, std::memory_order_relaxed);\n"       // 11
      "    mu_.unlock();\n"                                     // 12
      "  }\n"                                                   // 13
      "\n"                                                      // 14
      "  void wire(Registry& reg) {\n"                          // 15
      "    reg.add_collector([&](Builder& b) {\n"               // 16
      "      std::lock_guard lock(mu_);\n"                      // 17
      "      b.gauge(\"x\", 1);\n"                              // 18
      "    });\n"                                               // 19
      "  }\n"                                                   // 20
      "};\n";                                                   // 21
  const LintReport r = lint("src/demo/bad.h", fixture);
  EXPECT_FALSE(r.ok());
  expect_matches_golden(r.to_text(), "thread_lint_report.txt");
  expect_matches_golden(r.to_json(), "thread_lint_report.json");
}

}  // namespace
}  // namespace atp
