// Failure-injection torture: sites crash and recover at random moments
// while chopped distributed transfers stream through recoverable queues.
// Afterwards every committed transfer must have applied EXACTLY once at
// both ends (conservation) despite retransmissions, redeliveries and lost
// volatile state.  Plus a lock-manager stress suite: random concurrent
// acquire/release traffic with invariants checked throughout.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "audit/esr_certifier.h"
#include "audit/sr_certifier.h"
#include "common/rng.h"
#include "dist/coordinator.h"
#include "dist/site.h"
#include "engine/executor.h"
#include "engine/plan.h"
#include "lock/lock_manager.h"
#include "trace/tracer.h"
#include "workload/banking.h"

namespace atp {
namespace {

using namespace std::chrono_literals;

constexpr Key kX = 1;
constexpr Key kY = 2;

class QueueTortureTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(QueueTortureTest, CrashStormPreservesExactlyOnce) {
  NetworkOptions n;
  n.one_way_latency = std::chrono::microseconds(300);
  SimNetwork net(2, n);
  Tracer tracer(1 << 18);
  net.set_tracer(&tracer);
  DatabaseOptions dbo;
  dbo.scheduler = SchedulerKind::DC;
  dbo.lock_timeout = std::chrono::milliseconds(500);
  dbo.tracer = &tracer;
  DatabaseOptions dbo_ny = dbo;
  dbo_ny.site_id = 0;
  DatabaseOptions dbo_la = dbo;
  dbo_la.site_id = 1;
  Site ny(0, net, dbo_ny);
  Site la(1, net, dbo_la);
  constexpr Value kInitial = 100000;
  ny.db().load(kX, kInitial);
  la.db().load(kY, kInitial);
  const std::vector<Site*> sites{&ny, &la};
  Coordinator::install_chop_handler(sites);
  ny.queues().set_retry_interval(5ms);
  la.queues().set_retry_interval(5ms);
  ny.start();
  la.start();

  // Chaos thread: LA crashes and recovers on a random cadence.
  std::atomic<bool> stop{false};
  std::thread chaos([&] {
    Rng rng(GetParam());
    while (!stop.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(5 + rng.uniform(30)));
      la.crash();
      std::this_thread::sleep_for(
          std::chrono::milliseconds(5 + rng.uniform(30)));
      la.recover();
    }
  });

  // Client: a stream of chopped transfers NY -> LA.
  Coordinator coord(ny, sites);
  Rng rng(GetParam() * 31 + 7);
  Value total_transferred = 0;
  std::vector<std::uint64_t> gtids;
  for (int i = 0; i < 60; ++i) {
    const Value amount = 1 + Value(rng.uniform(50));
    DistTxnSpec spec;
    spec.kind = TxnKind::Update;
    spec.piece_epsilon = 1e9;
    spec.pieces = {DistPieceSpec{0, {Access::add(kX, -amount, amount)}},
                   DistPieceSpec{1, {Access::add(kY, +amount, amount)}}};
    auto out = coord.run_chopped(spec, 0ms);
    ASSERT_TRUE(out.ok());  // piece 1 is local; always commits
    total_transferred += amount;
    gtids.push_back(out.value().gtid);
    std::this_thread::sleep_for(std::chrono::milliseconds(1 + rng.uniform(3)));
  }

  // Stop the chaos, let the queues drain.
  stop = true;
  chaos.join();
  la.recover();
  for (const auto gtid : gtids) {
    EXPECT_TRUE(ny.wait_done(gtid, 20000ms)) << "gtid " << gtid;
  }

  // Exactly-once: NY debited the total, LA credited it -- no piece lost to
  // a crash, none applied twice despite retransmission.
  EXPECT_EQ(ny.db().store().read_committed(kX).value(),
            kInitial - total_transferred);
  EXPECT_EQ(la.db().store().read_committed(kY).value(),
            kInitial + total_transferred);
  // And the queue accounting agrees.
  const QueueStats qs = la.queues().stats();
  EXPECT_EQ(qs.delivered, gtids.size() + 0u);  // one chop message per txn
  EXPECT_EQ(qs.consumed, gtids.size());

  ny.stop();
  la.stop();

  // Certifier oracle: replay the fuzziness ledger of the whole crash-storm
  // run -- every committed ET (on either site) must have stayed inside its
  // eps-spec, crashes and redeliveries notwithstanding.
  const auto events = tracer.collect();
  const EsrReport esr = certify_esr(events, tracer.dropped());
  EXPECT_TRUE(esr.complete);
  EXPECT_TRUE(esr.ok) << esr.describe();
  EXPECT_GT(esr.committed_ets, 0u);
  // The trace saw the chaos: crashes, recoveries, queue and network traffic.
  std::size_t crashes = 0, deliveries = 0, sends = 0;
  for (const auto& e : events) {
    crashes += (e.kind == TraceKind::SiteCrash);
    deliveries += (e.kind == TraceKind::QueueDeliver);
    sends += (e.kind == TraceKind::NetSend);
  }
  EXPECT_GE(crashes, 1u);
  EXPECT_GE(deliveries, gtids.size());
  EXPECT_GT(sends, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, QueueTortureTest,
                         ::testing::Values(101, 202, 303));

// ---------------------------------------------------------------------------
// Lock-manager stress: random acquire/release traffic from many threads.
// Invariants: no two incompatible holders coexist; every acquire terminates
// (grant, deadlock, or timeout); release always unblocks.

class LockStressTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LockStressTest, RandomTrafficKeepsInvariants) {
  LockManager locks{std::chrono::milliseconds(200)};
  NeverFuzzyResolver cc;
  constexpr int kThreads = 6;
  constexpr int kKeys = 8;
  constexpr int kOpsPerThread = 300;
  std::atomic<std::uint64_t> granted{0}, denied{0};
  std::atomic<bool> violation{false};

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(GetParam() * 97 + std::uint64_t(t));
      TxnId txn = TxnId(t + 1) * 1000;
      int held = 0;
      for (int i = 0; i < kOpsPerThread; ++i) {
        const Key key = rng.uniform(kKeys);
        const LockMode mode =
            rng.chance(0.4) ? LockMode::Exclusive : LockMode::Shared;
        const Status s = locks.acquire(txn, key, mode, cc);
        if (s.ok()) {
          ++granted;
          ++held;
          // Invariant: we truly hold it, and if X, exclusively.
          if (!locks.holds(txn, key, mode)) violation = true;
          if (mode == LockMode::Exclusive) {
            for (const auto& h : locks.holders_of(key)) {
              if (h.txn != txn) violation = true;
            }
          }
        } else {
          ++denied;
          // Deadlock or timeout: drop everything and start a new txn.
          locks.release_all(txn);
          ++txn;
          held = 0;
          continue;
        }
        if (held > 3 || rng.chance(0.3)) {
          locks.release_all(txn);
          ++txn;
          held = 0;
        }
      }
      locks.release_all(txn);
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_FALSE(violation.load());
  EXPECT_GT(granted.load(), 0u);
  // After everything released, all keys must be free.
  for (Key k = 0; k < kKeys; ++k) {
    EXPECT_TRUE(locks.acquire(999999, k, LockMode::Exclusive, cc).ok());
  }
  locks.release_all(999999);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LockStressTest, ::testing::Values(1, 2, 3, 4));

// ---------------------------------------------------------------------------
// Method-mix stress: the paper's three methods driven through the full
// multi-worker engine (striped lock table, atomic fuzziness counters,
// work-stealing scheduler) with the SR/ESR certifiers as external oracles.
// Built for the TSan CI job: >= 4 worker threads exercise every cross-thread
// edge -- stripe handoffs, cross-stripe deadlock publication, seqlock
// eps-spec reads, steal traffic -- while the certifiers prove the schedules
// stayed correct, not merely race-free.

class MethodMixStressTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MethodMixStressTest, CertifiersHoldUnderConcurrency) {
  BankingConfig cfg;
  cfg.branches = 2;
  cfg.accounts_per_branch = 16;
  cfg.max_transfer = 40;
  cfg.branch_audit_fraction = 0.20;
  cfg.global_audit_fraction = 0.10;
  cfg.audit_scan = 10;
  cfg.zipf_theta = 0.7;
  cfg.update_epsilon = 900;
  cfg.query_epsilon = 2000;
  const Workload w = make_banking(cfg, 150, GetParam());

  const std::vector<MethodConfig> methods = {
      MethodConfig::method1(), MethodConfig::method2(),
      MethodConfig::method3()};
  for (const MethodConfig& method : methods) {
    SCOPED_TRACE(method.name());
    auto plan = ExecutionPlan::build(w.types, method);
    ASSERT_TRUE(plan.ok()) << plan.status().to_string();

    Tracer tracer(1 << 18);
    DatabaseOptions dbo =
        Executor::database_options(method, std::chrono::milliseconds(1000));
    dbo.tracer = &tracer;
    Database db(dbo);
    w.load_into(db);

    ExecutorOptions opts;
    opts.workers = 6;  // >= 4: real contention on every shared structure
    opts.seed = GetParam() * 131 + 11;
    opts.op_delay_min_us = 20;
    opts.op_delay_max_us = 80;
    const ExecutorReport r = Executor::run(db, plan.value(), w.instances, opts);

    EXPECT_GT(r.committed, 0u);
    EXPECT_EQ(r.budget_violations, 0u);
    // Realized audit error must sit inside the promised eps(Q).
    EXPECT_LE(r.query_error.max, double(cfg.query_epsilon));

    const auto events = tracer.collect();
    const std::uint64_t dropped = tracer.dropped();
    // ESR oracle (all methods): replay the fuzziness ledger.
    const EsrReport esr = certify_esr(events, dropped);
    EXPECT_TRUE(esr.complete);
    EXPECT_TRUE(esr.ok) << esr.describe();
    EXPECT_GT(esr.committed_ets, 0u);
    // SR oracle (Method 2 runs on CC): each piece is an ET under 2PL, so
    // the committed projection must be conflict-serializable at ET
    // granularity.  (Original-transaction SR is NOT promised here: that is
    // exactly what ESR-chopping trades for the eps budget -- merging pieces
    // back into originals would surface the bought-and-paid-for cycles.)
    if (method.sched == SchedulerKind::CC) {
      const SrReport sr = certify_sr(events, nullptr, dropped);
      EXPECT_TRUE(sr.complete);
      EXPECT_TRUE(sr.serializable) << sr.describe();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MethodMixStressTest,
                         ::testing::Values(17, 29));

}  // namespace
}  // namespace atp
