// Tracer + exporter tests: ring mechanics (ordering, overwrite accounting,
// clear semantics), multi-threaded recording, database lifecycle
// instrumentation, and the two export formats.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/metrics_registry.h"
#include "sched/database.h"
#include "trace/export.h"
#include "trace/tracer.h"

namespace atp {
namespace {

TEST(Tracer, RecordsInGlobalSeqOrder) {
  Tracer tracer;
  tracer.record(TraceKind::TxnBegin, 0, 1);
  tracer.record(TraceKind::Read, 0, 1, 7, 3.0);
  tracer.record(TraceKind::TxnCommit, 0, 1);
  const auto events = tracer.collect();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_LT(events[0].seq, events[1].seq);
  EXPECT_LT(events[1].seq, events[2].seq);
  EXPECT_EQ(events[0].kind, TraceKind::TxnBegin);
  EXPECT_EQ(events[1].kind, TraceKind::Read);
  EXPECT_EQ(events[1].key, 7u);
  EXPECT_EQ(events[1].a, 3.0);
  EXPECT_EQ(events[2].kind, TraceKind::TxnCommit);
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(Tracer, EmitOnNullTracerIsANoop) {
  Tracer::emit(nullptr, TraceKind::TxnBegin, 0, 1);  // must not crash
}

TEST(Tracer, ConcurrentRecordersMergeTotallyOrdered) {
  Tracer tracer;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer, t] {
      for (int i = 0; i < kPerThread; ++i) {
        tracer.record(TraceKind::Read, 0, TxnId(t + 1), Key(i));
      }
    });
  }
  for (auto& th : threads) th.join();

  const auto events = tracer.collect();
  ASSERT_EQ(events.size(), std::size_t(kThreads) * kPerThread);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LT(events[i - 1].seq, events[i].seq);  // strict, no duplicates
  }
  // Per-txn (= per-recording-thread) order is preserved through the merge.
  std::vector<Key> next_key(kThreads + 1, 0);
  for (const auto& e : events) {
    EXPECT_EQ(e.key, next_key[e.txn]++);
  }
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(Tracer, RingOverwritesOldestAndCountsDrops) {
  Tracer tracer(/*per_thread_capacity=*/8);
  for (int i = 0; i < 20; ++i) {
    tracer.record(TraceKind::Read, 0, 1, Key(i));
  }
  EXPECT_EQ(tracer.size(), 8u);
  EXPECT_EQ(tracer.dropped(), 12u);
  const auto events = tracer.collect();
  ASSERT_EQ(events.size(), 8u);
  // The survivors are the newest 8, still in order.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].key, Key(12 + i));
  }
}

TEST(Tracer, ClearDropsEventsButSeqKeepsClimbing) {
  Tracer tracer(/*per_thread_capacity=*/8);
  for (int i = 0; i < 20; ++i) tracer.record(TraceKind::Read, 0, 1, Key(i));
  const auto before = tracer.collect();
  tracer.clear();
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.dropped(), 0u);

  // Overwrite cycling must restart cleanly relative to the cleared state.
  for (int i = 0; i < 10; ++i) tracer.record(TraceKind::Write, 0, 2, Key(i));
  const auto after = tracer.collect();
  ASSERT_EQ(after.size(), 8u);
  EXPECT_EQ(tracer.dropped(), 2u);
  for (std::size_t i = 0; i < after.size(); ++i) {
    EXPECT_EQ(after[i].key, Key(2 + i));
  }
  EXPECT_GT(after.front().seq, before.back().seq);
}

TEST(TraceSubscription, DrainsIncrementallyWithStableHorizon) {
  Tracer tracer;
  auto sub = tracer.subscribe();
  tracer.record(TraceKind::TxnBegin, 0, 1);
  tracer.record(TraceKind::Read, 0, 1, 7);
  tracer.record(TraceKind::TxnCommit, 0, 1);

  auto batch = sub->drain();
  ASSERT_EQ(batch.events.size(), 3u);
  EXPECT_EQ(batch.dropped, 0u);
  // Everything recorded is below the horizon (recorders were quiescent).
  EXPECT_GT(batch.stable_before, batch.events.back().seq);

  // A second drain returns only what is new.
  tracer.record(TraceKind::TxnBegin, 0, 2);
  batch = sub->drain();
  ASSERT_EQ(batch.events.size(), 1u);
  EXPECT_EQ(batch.events[0].txn, 2u);
  EXPECT_TRUE(sub->drain().events.empty());

  // collect() is unaffected: subscriptions are non-destructive.
  EXPECT_EQ(tracer.collect().size(), 4u);
}

TEST(TraceSubscription, ChargesOverwritesAndClearsAsDropped) {
  Tracer tracer(/*per_thread_capacity=*/8);
  auto sub = tracer.subscribe();
  for (int i = 0; i < 20; ++i) tracer.record(TraceKind::Read, 0, 1, Key(i));
  auto batch = sub->drain();
  ASSERT_EQ(batch.events.size(), 8u);  // the newest 8 survived
  EXPECT_EQ(batch.dropped, 12u);
  EXPECT_EQ(batch.events.front().key, 12u);

  // Events recorded then clear()ed before the next drain are dropped too.
  tracer.record(TraceKind::Read, 0, 1, 100);
  tracer.clear();
  batch = sub->drain();
  EXPECT_TRUE(batch.events.empty());
  EXPECT_EQ(batch.dropped, 13u);  // cumulative

  // The stream keeps working after the loss.
  tracer.record(TraceKind::Write, 0, 2, 200);
  batch = sub->drain();
  ASSERT_EQ(batch.events.size(), 1u);
  EXPECT_EQ(batch.events[0].key, 200u);
  EXPECT_EQ(batch.dropped, 13u);
}

TEST(TraceSubscription, StartsAtOldestRetainedSoOldLossesAreNotCharged) {
  // Subscribing to a tracer that has already wrapped (or been cleared) must
  // start at the oldest events still retained: pre-subscription losses are
  // history, not drops, or every late subscriber would come up permanently
  // degraded.
  Tracer tracer(/*per_thread_capacity=*/8);
  for (int i = 0; i < 20; ++i) tracer.record(TraceKind::Read, 0, 1, Key(i));
  auto sub = tracer.subscribe();
  auto batch = sub->drain();
  ASSERT_EQ(batch.events.size(), 8u);  // the retained suffix
  EXPECT_EQ(batch.events.front().key, 12u);
  EXPECT_EQ(batch.dropped, 0u);  // the 12 pre-subscribe overwrites don't count

  // Post-subscription overwrites still do.
  for (int i = 0; i < 20; ++i) tracer.record(TraceKind::Read, 0, 1, Key(i));
  batch = sub->drain();
  ASSERT_EQ(batch.events.size(), 8u);
  EXPECT_EQ(batch.dropped, 12u);

  // Same for clear(): a subscription born after it owes nothing for it.
  tracer.record(TraceKind::Read, 0, 1, 99);
  tracer.clear();
  auto late = tracer.subscribe();
  batch = late->drain();
  EXPECT_TRUE(batch.events.empty());
  EXPECT_EQ(batch.dropped, 0u);
}

TEST(TraceSubscription, ConcurrentDrainsDeliverEverySeqExactlyOnce) {
  // The stable-horizon contract under fire: recorders and the consumer run
  // concurrently; every event below a batch's horizon must arrive in that
  // batch or an earlier one, and nothing is duplicated.
  Tracer tracer;
  auto sub = tracer.subscribe();
  constexpr int kThreads = 4;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer, t] {
      for (int i = 0; i < kPerThread; ++i) {
        tracer.record(TraceKind::Read, 0, TxnId(t + 1), Key(i));
      }
    });
  }
  std::vector<std::uint64_t> seqs;
  std::uint64_t horizon = 0;
  while (seqs.size() < std::size_t(kThreads) * kPerThread) {
    const auto batch = sub->drain();
    EXPECT_EQ(batch.dropped, 0u);
    EXPECT_GE(batch.stable_before, horizon);  // horizons only advance
    for (const auto& e : batch.events) seqs.push_back(e.seq);
    // Check the contract: every seq below the horizon was delivered.  Seqs
    // start at 1, so `horizon - 1` of them must have arrived.
    horizon = batch.stable_before;
    ASSERT_GE(seqs.size(), std::size_t(horizon - 1));
  }
  for (auto& th : threads) th.join();
  std::sort(seqs.begin(), seqs.end());
  EXPECT_EQ(std::adjacent_find(seqs.begin(), seqs.end()), seqs.end());
}

TEST(Tracer, DatabaseLifecycleIsInstrumented) {
  Tracer tracer;
  DatabaseOptions dbo;
  dbo.scheduler = SchedulerKind::CC;
  dbo.tracer = &tracer;
  dbo.site_id = 3;
  Database db(dbo);
  db.load(1, 10);

  Txn t = db.begin(TxnKind::Update, EpsilonSpec::unlimited());
  ASSERT_TRUE(t.read(1).ok());
  ASSERT_TRUE(t.write(1, 11).ok());
  ASSERT_TRUE(t.commit().ok());

  Txn q = db.begin(TxnKind::Query, EpsilonSpec::unlimited());
  ASSERT_TRUE(q.read(1).ok());
  q.abort();

  const auto events = tracer.collect();
  auto count = [&](TraceKind k) {
    std::size_t n = 0;
    for (const auto& e : events) n += (e.kind == k);
    return n;
  };
  EXPECT_EQ(count(TraceKind::TxnBegin), 2u);
  EXPECT_EQ(count(TraceKind::TxnCommit), 1u);
  EXPECT_EQ(count(TraceKind::TxnAbort), 1u);
  EXPECT_EQ(count(TraceKind::Read), 2u);
  EXPECT_EQ(count(TraceKind::Write), 1u);
  // Only the update locks: queries read versions and bypass the manager.
  EXPECT_GE(count(TraceKind::LockAcquire), 2u);
  EXPECT_EQ(count(TraceKind::LockRelease), 1u);
  for (const auto& e : events) EXPECT_EQ(e.site, 3u);
  // The write event carries the installed value; the commit follows it.
  for (const auto& e : events) {
    if (e.kind == TraceKind::Write) EXPECT_EQ(e.a, 11.0);
  }
}

TEST(Tracer, AttachMetricsPublishesRingHealth) {
  obs::MetricsRegistry reg;
  Tracer tracer(/*per_thread_capacity=*/8);
  tracer.attach_metrics(&reg);
  for (int i = 0; i < 20; ++i) tracer.record(TraceKind::Read, 0, 1, Key(i));

  const auto snap = reg.snapshot();
  const obs::Sample* dropped = snap.find("trace.dropped_events");
  ASSERT_NE(dropped, nullptr);
  EXPECT_EQ(dropped->value, 12.0);
  const obs::Sample* retained = snap.find("trace.retained_events");
  ASSERT_NE(retained, nullptr);
  EXPECT_EQ(retained->value, 8.0);

  // Detach: the collector must disappear (and the dtor must not double-free).
  tracer.attach_metrics(nullptr);
  EXPECT_EQ(reg.snapshot().find("trace.dropped_events"), nullptr);
}

TEST(Tracer, UntracedDatabaseStaysSilent) {
  DatabaseOptions dbo;
  dbo.scheduler = SchedulerKind::CC;  // tracer stays nullptr
  Database db(dbo);
  db.load(1, 5);
  Txn t = db.begin(TxnKind::Update, EpsilonSpec::unlimited());
  ASSERT_TRUE(t.write(1, 6).ok());
  ASSERT_TRUE(t.commit().ok());  // must not crash on null tracer
}

TEST(TraceExport, ChromeTracePairsSpansAndEscapes) {
  Tracer tracer;
  tracer.record(TraceKind::TxnBegin, 1, 7);
  tracer.record(TraceKind::Read, 1, 7, 3, 42.0);
  tracer.record(TraceKind::TxnCommit, 1, 7, 0, 5.0);
  tracer.record(TraceKind::LockWait, 1, 8, 3);  // instant, never closed

  std::ostringstream out;
  write_chrome_trace(tracer.collect(), out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);  // the txn span
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);  // read + wait
  EXPECT_NE(json.find("txn"), std::string::npos);
  // Balanced braces/brackets (cheap well-formedness check).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(TraceExport, ChromeTraceClampsNonFiniteNumbers) {
  Tracer tracer;
  tracer.record(TraceKind::TxnBegin, 0, 1, 0,
                std::numeric_limits<double>::infinity(),
                std::numeric_limits<double>::quiet_NaN());
  tracer.record(TraceKind::TxnCommit, 0, 1);
  std::ostringstream out;
  write_chrome_trace(tracer.collect(), out);
  const std::string json = out.str();
  EXPECT_EQ(json.find("inf"), std::string::npos);
  EXPECT_EQ(json.find("nan"), std::string::npos);
}

TEST(TraceExport, NdjsonEmitsOneObjectPerEvent) {
  Tracer tracer;
  tracer.record(TraceKind::TxnBegin, 0, 1);
  tracer.record(TraceKind::Write, 0, 1, 4, 9.5);
  tracer.record(TraceKind::TxnCommit, 0, 1);
  std::ostringstream out;
  write_ndjson(tracer.collect(), out);
  const std::string text = out.str();
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 3);
  EXPECT_NE(text.find("\"kind\":\"write\""), std::string::npos);
  EXPECT_NE(text.find("\"key\":4"), std::string::npos);
}

}  // namespace
}  // namespace atp
