// Tracer + exporter tests: ring mechanics (ordering, overwrite accounting,
// clear semantics), multi-threaded recording, database lifecycle
// instrumentation, and the two export formats.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <sstream>
#include <thread>
#include <vector>

#include "sched/database.h"
#include "trace/export.h"
#include "trace/tracer.h"

namespace atp {
namespace {

TEST(Tracer, RecordsInGlobalSeqOrder) {
  Tracer tracer;
  tracer.record(TraceKind::TxnBegin, 0, 1);
  tracer.record(TraceKind::Read, 0, 1, 7, 3.0);
  tracer.record(TraceKind::TxnCommit, 0, 1);
  const auto events = tracer.collect();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_LT(events[0].seq, events[1].seq);
  EXPECT_LT(events[1].seq, events[2].seq);
  EXPECT_EQ(events[0].kind, TraceKind::TxnBegin);
  EXPECT_EQ(events[1].kind, TraceKind::Read);
  EXPECT_EQ(events[1].key, 7u);
  EXPECT_EQ(events[1].a, 3.0);
  EXPECT_EQ(events[2].kind, TraceKind::TxnCommit);
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(Tracer, EmitOnNullTracerIsANoop) {
  Tracer::emit(nullptr, TraceKind::TxnBegin, 0, 1);  // must not crash
}

TEST(Tracer, ConcurrentRecordersMergeTotallyOrdered) {
  Tracer tracer;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer, t] {
      for (int i = 0; i < kPerThread; ++i) {
        tracer.record(TraceKind::Read, 0, TxnId(t + 1), Key(i));
      }
    });
  }
  for (auto& th : threads) th.join();

  const auto events = tracer.collect();
  ASSERT_EQ(events.size(), std::size_t(kThreads) * kPerThread);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LT(events[i - 1].seq, events[i].seq);  // strict, no duplicates
  }
  // Per-txn (= per-recording-thread) order is preserved through the merge.
  std::vector<Key> next_key(kThreads + 1, 0);
  for (const auto& e : events) {
    EXPECT_EQ(e.key, next_key[e.txn]++);
  }
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(Tracer, RingOverwritesOldestAndCountsDrops) {
  Tracer tracer(/*per_thread_capacity=*/8);
  for (int i = 0; i < 20; ++i) {
    tracer.record(TraceKind::Read, 0, 1, Key(i));
  }
  EXPECT_EQ(tracer.size(), 8u);
  EXPECT_EQ(tracer.dropped(), 12u);
  const auto events = tracer.collect();
  ASSERT_EQ(events.size(), 8u);
  // The survivors are the newest 8, still in order.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].key, Key(12 + i));
  }
}

TEST(Tracer, ClearDropsEventsButSeqKeepsClimbing) {
  Tracer tracer(/*per_thread_capacity=*/8);
  for (int i = 0; i < 20; ++i) tracer.record(TraceKind::Read, 0, 1, Key(i));
  const auto before = tracer.collect();
  tracer.clear();
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.dropped(), 0u);

  // Overwrite cycling must restart cleanly relative to the cleared state.
  for (int i = 0; i < 10; ++i) tracer.record(TraceKind::Write, 0, 2, Key(i));
  const auto after = tracer.collect();
  ASSERT_EQ(after.size(), 8u);
  EXPECT_EQ(tracer.dropped(), 2u);
  for (std::size_t i = 0; i < after.size(); ++i) {
    EXPECT_EQ(after[i].key, Key(2 + i));
  }
  EXPECT_GT(after.front().seq, before.back().seq);
}

TEST(Tracer, DatabaseLifecycleIsInstrumented) {
  Tracer tracer;
  DatabaseOptions dbo;
  dbo.scheduler = SchedulerKind::CC;
  dbo.tracer = &tracer;
  dbo.site_id = 3;
  Database db(dbo);
  db.load(1, 10);

  Txn t = db.begin(TxnKind::Update, EpsilonSpec::unlimited());
  ASSERT_TRUE(t.read(1).ok());
  ASSERT_TRUE(t.write(1, 11).ok());
  ASSERT_TRUE(t.commit().ok());

  Txn q = db.begin(TxnKind::Query, EpsilonSpec::unlimited());
  ASSERT_TRUE(q.read(1).ok());
  q.abort();

  const auto events = tracer.collect();
  auto count = [&](TraceKind k) {
    std::size_t n = 0;
    for (const auto& e : events) n += (e.kind == k);
    return n;
  };
  EXPECT_EQ(count(TraceKind::TxnBegin), 2u);
  EXPECT_EQ(count(TraceKind::TxnCommit), 1u);
  EXPECT_EQ(count(TraceKind::TxnAbort), 1u);
  EXPECT_EQ(count(TraceKind::Read), 2u);
  EXPECT_EQ(count(TraceKind::Write), 1u);
  EXPECT_GE(count(TraceKind::LockAcquire), 2u);
  EXPECT_EQ(count(TraceKind::LockRelease), 2u);
  for (const auto& e : events) EXPECT_EQ(e.site, 3u);
  // The write event carries the installed value; the commit follows it.
  for (const auto& e : events) {
    if (e.kind == TraceKind::Write) EXPECT_EQ(e.a, 11.0);
  }
}

TEST(Tracer, UntracedDatabaseStaysSilent) {
  DatabaseOptions dbo;
  dbo.scheduler = SchedulerKind::CC;  // tracer stays nullptr
  Database db(dbo);
  db.load(1, 5);
  Txn t = db.begin(TxnKind::Update, EpsilonSpec::unlimited());
  ASSERT_TRUE(t.write(1, 6).ok());
  ASSERT_TRUE(t.commit().ok());  // must not crash on null tracer
}

TEST(TraceExport, ChromeTracePairsSpansAndEscapes) {
  Tracer tracer;
  tracer.record(TraceKind::TxnBegin, 1, 7);
  tracer.record(TraceKind::Read, 1, 7, 3, 42.0);
  tracer.record(TraceKind::TxnCommit, 1, 7, 0, 5.0);
  tracer.record(TraceKind::LockWait, 1, 8, 3);  // instant, never closed

  std::ostringstream out;
  write_chrome_trace(tracer.collect(), out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);  // the txn span
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);  // read + wait
  EXPECT_NE(json.find("txn"), std::string::npos);
  // Balanced braces/brackets (cheap well-formedness check).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(TraceExport, ChromeTraceClampsNonFiniteNumbers) {
  Tracer tracer;
  tracer.record(TraceKind::TxnBegin, 0, 1, 0,
                std::numeric_limits<double>::infinity(),
                std::numeric_limits<double>::quiet_NaN());
  tracer.record(TraceKind::TxnCommit, 0, 1);
  std::ostringstream out;
  write_chrome_trace(tracer.collect(), out);
  const std::string json = out.str();
  EXPECT_EQ(json.find("inf"), std::string::npos);
  EXPECT_EQ(json.find("nan"), std::string::npos);
}

TEST(TraceExport, NdjsonEmitsOneObjectPerEvent) {
  Tracer tracer;
  tracer.record(TraceKind::TxnBegin, 0, 1);
  tracer.record(TraceKind::Write, 0, 1, 4, 9.5);
  tracer.record(TraceKind::TxnCommit, 0, 1);
  std::ostringstream out;
  write_ndjson(tracer.collect(), out);
  const std::string text = out.str();
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 3);
  EXPECT_NE(text.find("\"kind\":\"write\""), std::string::npos);
  EXPECT_NE(text.find("\"key\":4"), std::string::npos);
}

}  // namespace
}  // namespace atp
