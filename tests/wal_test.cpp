// Write-ahead log + recovery: redo-only replay, checkpointing, in-doubt 2PC
// state, log-backed recoverable queues, and randomized crash-replay
// properties (committed-prefix atomicity).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "fault/fault.h"
#include "net/network.h"
#include "queue/recoverable_queue.h"
#include "sched/database.h"
#include "wal/log.h"
#include "wal/recovery.h"

namespace atp {
namespace {

DatabaseOptions wal_options(LogDevice* wal) {
  DatabaseOptions o;
  o.wal = wal;
  return o;
}

TEST(LogDevice, AssignsMonotonicLsns) {
  LogDevice log;
  EXPECT_EQ(log.append(LogRecord{}), 1u);
  EXPECT_EQ(log.append(LogRecord{}), 2u);
  EXPECT_EQ(log.next_lsn(), 3u);
  EXPECT_EQ(log.size(), 2u);
}

TEST(LogDevice, FsyncCounts) {
  LogDevice log;
  log.fsync();
  log.fsync();
  EXPECT_EQ(log.fsync_count(), 2u);
}

TEST(LogDevice, TruncateDropsPrefix) {
  LogDevice log;
  log.append(LogRecord{});
  log.append(LogRecord{});
  log.append(LogRecord{});
  log.truncate_before(3);
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log.records()[0].lsn, 3u);
}

TEST(Recovery, CommittedWritesRedo) {
  LogDevice log;
  Database db(wal_options(&log));
  db.load(1, 100);
  {
    Txn t = db.begin(TxnKind::Update, EpsilonSpec::serializable());
    ASSERT_TRUE(t.add(1, 50).ok());
    ASSERT_TRUE(t.commit().ok());
  }
  EXPECT_GE(log.fsync_count(), 1u);  // force-at-commit

  // Total loss; rebuild from the log.
  const RecoveryResult r = db.recover_from_wal();
  EXPECT_EQ(r.committed_txns, 1u);
  EXPECT_EQ(db.store().read_committed(1).value(), 150);
}

TEST(Recovery, UncommittedAndAbortedWritesDoNotRedo) {
  LogDevice log;
  Database db(wal_options(&log));
  db.load(1, 100);
  {
    Txn t = db.begin(TxnKind::Update, EpsilonSpec::serializable());
    ASSERT_TRUE(t.write(1, 999).ok());
    t.abort();
  }
  const RecoveryResult r = db.recover_from_wal();
  EXPECT_EQ(r.committed_txns, 0u);
  // Key 1 was never checkpointed or committed-written: it is simply absent
  // (the pre-log load() is not durable by itself).
  EXPECT_FALSE(db.store().read_committed(1).ok());
}

TEST(Recovery, CheckpointCapturesLoadedState) {
  LogDevice log;
  Database db(wal_options(&log));
  db.load(1, 100);
  db.load(2, 200);
  db.checkpoint();  // quiescent snapshot makes the loads durable
  {
    Txn t = db.begin(TxnKind::Update, EpsilonSpec::serializable());
    ASSERT_TRUE(t.add(1, 11).ok());
    ASSERT_TRUE(t.commit().ok());
  }
  const RecoveryResult r = db.recover_from_wal();
  EXPECT_EQ(db.store().read_committed(1).value(), 111);
  EXPECT_EQ(db.store().read_committed(2).value(), 200);
  EXPECT_EQ(r.redone_writes, 1u);  // only the post-checkpoint write
}

TEST(Recovery, CheckpointTruncatesTheLog) {
  LogDevice log;
  Database db(wal_options(&log));
  db.load(1, 100);
  for (int i = 0; i < 10; ++i) {
    Txn t = db.begin(TxnKind::Update, EpsilonSpec::serializable());
    ASSERT_TRUE(t.add(1, 1).ok());
    ASSERT_TRUE(t.commit().ok());
  }
  const std::size_t before = log.size();
  db.checkpoint();
  EXPECT_LT(log.size(), before);
  (void)db.recover_from_wal();
  EXPECT_EQ(db.store().read_committed(1).value(), 110);
}

TEST(Recovery, PreparedTransactionSurvivesAsInDoubt) {
  LogDevice log;
  Database db(wal_options(&log));
  db.load(1, 100);
  Txn t = db.begin(TxnKind::Update, EpsilonSpec::serializable());
  ASSERT_TRUE(t.write(1, 175).ok());
  t.log_prepare();  // the 2PC vote's force-log
  const TxnId prepared_id = t.id();
  // Crash before any decision: the txn handle dies with the process.

  const RecoveryResult r = db.recover_from_wal();
  ASSERT_EQ(r.in_doubt.size(), 1u);
  EXPECT_EQ(r.in_doubt[0].txn, prepared_id);
  ASSERT_EQ(r.in_doubt[0].staged.size(), 1u);
  EXPECT_EQ(r.in_doubt[0].staged[0], (std::pair<Key, Value>{1, 175}));
  // The staged write is NOT applied: the coordinator's decision does that.
  EXPECT_FALSE(db.store().read_committed(1).ok());
  t.abort();  // silence the handle (post-recovery it has no effect)
}

TEST(Recovery, PreparedThenCommittedRedoesNormally) {
  LogDevice log;
  Database db(wal_options(&log));
  db.load(1, 100);
  Txn t = db.begin(TxnKind::Update, EpsilonSpec::serializable());
  ASSERT_TRUE(t.write(1, 175).ok());
  t.log_prepare();
  ASSERT_TRUE(t.commit().ok());
  const RecoveryResult r = db.recover_from_wal();
  EXPECT_TRUE(r.in_doubt.empty());
  EXPECT_EQ(db.store().read_committed(1).value(), 175);
}

TEST(Recovery, CheckpointPreservesInDoubtPreparedState) {
  // Regression: checkpoint truncation used to cut the log at the snapshot
  // unconditionally, dropping the kWrite/kPrepare records of an in-doubt
  // 2PC participant that predated it -- after the next crash the
  // coordinator's commit decision had nothing to apply.  Truncation now
  // respects the oldest undecided transaction.
  LogDevice log;
  Database db(wal_options(&log));
  db.load(1, 100);
  db.load(2, 200);
  db.checkpoint();

  Txn p = db.begin(TxnKind::Update, EpsilonSpec::serializable());
  ASSERT_TRUE(p.write(1, 175).ok());
  p.log_prepare();  // voted; awaiting the coordinator's decision
  const TxnId prepared_id = p.id();

  // Unrelated traffic commits, then a checkpoint truncates the log.
  {
    Txn t = db.begin(TxnKind::Update, EpsilonSpec::serializable());
    ASSERT_TRUE(t.add(2, 5).ok());
    ASSERT_TRUE(t.commit().ok());
  }
  db.checkpoint();

  const RecoveryResult r = db.recover_from_wal();
  ASSERT_EQ(r.in_doubt.size(), 1u);
  EXPECT_EQ(r.in_doubt[0].txn, prepared_id);
  ASSERT_EQ(r.in_doubt[0].staged.size(), 1u);
  EXPECT_EQ(r.in_doubt[0].staged[0], (std::pair<Key, Value>{1, 175}));
  // Committed state is intact either way.
  EXPECT_EQ(db.store().read_committed(1).value(), 100);
  EXPECT_EQ(db.store().read_committed(2).value(), 205);
  p.abort();  // silence the handle
}

TEST(Recovery, InDoubtStagedWritesBelowCheckpointHorizonAreKept) {
  // Regression (hand-crafted log): recovery used to skip staged writes at
  // lsn <= checkpoint horizon when collecting in-doubt state, losing the
  // after-images a post-crash commit decision needs.  A prepared txn is
  // never part of the snapshot, so its writes must be collected from
  // anywhere in the log.
  LogDevice log;
  LogRecord w;
  w.type = LogRecordType::kWrite;
  w.txn = 5;
  w.key = 1;
  w.value = 175;
  log.append(std::move(w));
  LogRecord p;
  p.type = LogRecordType::kPrepare;
  p.txn = 5;
  log.append(std::move(p));
  LogRecord kv;
  kv.type = LogRecordType::kCheckpointKv;
  kv.key = 1;
  kv.value = 100;
  const std::uint64_t first_kv = log.append(std::move(kv));
  LogRecord marker;
  marker.type = LogRecordType::kCheckpoint;
  marker.qmsg_id = first_kv;  // the marker names its kv run
  log.append(std::move(marker));

  Store store;
  const RecoveryResult r = recover_from_log(log, store);
  EXPECT_EQ(store.read_committed(1).value(), 100);  // snapshot state
  ASSERT_EQ(r.in_doubt.size(), 1u);
  EXPECT_EQ(r.in_doubt[0].txn, 5u);
  ASSERT_EQ(r.in_doubt[0].staged.size(), 1u);
  EXPECT_EQ(r.in_doubt[0].staged[0], (std::pair<Key, Value>{1, 175}));
}

TEST(Recovery, WinnerCommittedAfterCheckpointRedoesPreCheckpointWrites) {
  // The checkpoint snapshot reflects exactly the transactions whose COMMIT
  // precedes the marker (no-steal: staged writes never enter the snapshot).
  // A transaction that staged before the checkpoint but committed after it
  // must redo ALL its writes, including the pre-checkpoint ones.
  LogDevice log;
  LogRecord w;
  w.type = LogRecordType::kWrite;
  w.txn = 7;
  w.key = 1;
  w.value = 500;
  log.append(std::move(w));
  LogRecord kv;
  kv.type = LogRecordType::kCheckpointKv;
  kv.key = 1;
  kv.value = 100;
  const std::uint64_t first_kv = log.append(std::move(kv));
  LogRecord marker;
  marker.type = LogRecordType::kCheckpoint;
  marker.qmsg_id = first_kv;
  log.append(std::move(marker));
  LogRecord c;
  c.type = LogRecordType::kCommit;
  c.txn = 7;
  log.append(std::move(c));

  Store store;
  const RecoveryResult r = recover_from_log(log, store);
  EXPECT_EQ(r.redone_writes, 1u);
  EXPECT_EQ(store.read_committed(1).value(), 500);
}

// --- torn tails & failed fsyncs --------------------------------------------

TEST(LogDevice, TearToDurableDropsOnlyTheUnsyncedTail) {
  LogDevice log;
  log.append(LogRecord{});
  ASSERT_TRUE(log.fsync());
  log.append(LogRecord{});
  log.append(LogRecord{});
  EXPECT_EQ(log.durable_lsn(), 1u);
  log.tear_to_durable();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log.records()[0].lsn, 1u);
  // LSNs are never reused after a tear.
  EXPECT_EQ(log.next_lsn(), 4u);
  EXPECT_EQ(log.append(LogRecord{}), 4u);
}

TEST(LogDevice, CommitRetriesFailedFsyncsUntilDurable) {
  // Injected transient fsync failures: the commit path retries (with
  // backoff) until the force succeeds, so commit acknowledgement always
  // implies durability -- a crash plus torn tail right after commit loses
  // nothing the caller was promised.
  LogDevice log;
  FaultSpec spec;
  spec.fsync_fail = 1.0;
  spec.max_consecutive_fsync_fails = 2;  // device "recovers" quickly
  FaultInjector inj(3, spec);
  log.set_fault_injector(&inj, 0);

  Database db(wal_options(&log));
  db.load(1, 100);
  {
    Txn t = db.begin(TxnKind::Update, EpsilonSpec::serializable());
    ASSERT_TRUE(t.add(1, 50).ok());
    ASSERT_TRUE(t.commit().ok());
  }
  EXPECT_GT(log.fsync_failures(), 0u);

  // Everything the commit promised survives a torn tail.
  log.tear_to_durable();
  const RecoveryResult r = db.recover_from_wal();
  EXPECT_EQ(r.committed_txns, 1u);
  EXPECT_EQ(db.store().read_committed(1).value(), 150);
}

// --- group commit ----------------------------------------------------------

TEST(GroupCommit, FsyncsFarFewerThanCommitsUnderConcurrency) {
  // Eight sync committers racing: each waits for a group flush covering its
  // commit record, but the flush leader batches everyone queued behind it
  // into one device fsync.  A realistic per-fsync latency gives followers
  // time to pile up; the whole point of the subsystem is fsyncs << commits.
  LogDevice log;
  log.set_fsync_latency(std::chrono::microseconds(300));
  Database db(wal_options(&log));
  constexpr int kThreads = 8;
  constexpr int kCommitsPerThread = 25;
  for (int k = 0; k < kThreads; ++k) db.load(k, 0);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kCommitsPerThread; ++i) {
        Txn txn = db.begin(TxnKind::Update, EpsilonSpec::serializable());
        ASSERT_TRUE(txn.add(t, 1).ok());
        ASSERT_TRUE(txn.commit().ok());
      }
    });
  }
  for (auto& th : threads) th.join();

  constexpr std::uint64_t kCommits = kThreads * kCommitsPerThread;
  const GroupCommitStats gs = db.group_committer()->stats();
  EXPECT_EQ(gs.sync_commits, kCommits);
  EXPECT_LT(log.fsync_count(), kCommits / 2);  // batching actually happened
  EXPECT_GT(gs.batched, 0u);
  // Every commit acknowledgement was backed by a durable record.
  EXPECT_GE(log.durable_lsn(), 1u);
  for (int k = 0; k < kThreads; ++k) {
    EXPECT_EQ(db.store().read_committed(k).value(), kCommitsPerThread);
  }
}

TEST(GroupCommit, SyncCommitNeverReportsBeforeItsLsnIsDurable) {
  // The contract behind CommitWait::kSync: by the time commit() returns, the
  // device's durable frontier covers the transaction's commit record.  Check
  // it from inside the racing threads, where a violation would actually bite.
  LogDevice log;
  log.set_fsync_latency(std::chrono::microseconds(200));
  Database db(wal_options(&log));
  for (int k = 0; k < 4; ++k) db.load(k, 0);
  std::atomic<bool> violated{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 20; ++i) {
        Txn txn = db.begin(TxnKind::Update, EpsilonSpec::serializable());
        ASSERT_TRUE(txn.add(t, 1).ok());
        ASSERT_TRUE(txn.commit().ok());
        if (log.durable_lsn() < txn.commit_lsn()) violated = true;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(violated.load());
}

TEST(GroupCommit, CrashLosesOnlyCommitsNotYetDurable) {
  // Async commits return at append time and ride a later group flush.  A
  // crash in that window is allowed to lose exactly them -- never a sync
  // commit, never a previously flushed async commit.
  LogDevice log;
  Database db(wal_options(&log));
  db.load(1, 100);
  db.load(2, 200);
  db.load(3, 300);
  {
    Txn t = db.begin(TxnKind::Update, EpsilonSpec::serializable());
    ASSERT_TRUE(t.add(1, 11).ok());
    ASSERT_TRUE(t.commit().ok());  // sync: durable before returning
  }
  std::uint64_t async_lsn = 0;
  {
    TxnOptions topts;
    topts.wait = CommitWait::kAsync;
    Txn t = db.begin(TxnKind::Update, EpsilonSpec::serializable(),
                     kInvalidTxn, topts);
    ASSERT_TRUE(t.add(2, 22).ok());
    ASSERT_TRUE(t.commit().ok());  // acknowledged, not yet durable
    async_lsn = t.commit_lsn();
  }
  EXPECT_GT(async_lsn, log.durable_lsn());  // still in the volatile tail
  {
    TxnOptions topts;
    topts.wait = CommitWait::kAsync;
    Txn t = db.begin(TxnKind::Update, EpsilonSpec::serializable(),
                     kInvalidTxn, topts);
    ASSERT_TRUE(t.add(3, 33).ok());
    ASSERT_TRUE(t.commit().ok());
  }

  // Crash with the async tail unflushed: the torn log keeps the sync commit,
  // drops both async ones.  Recovery must agree.
  log.tear_to_durable();
  const RecoveryResult r = db.recover_from_wal();
  EXPECT_EQ(r.committed_txns, 1u);
  EXPECT_EQ(db.store().read_committed(1).value(), 111);
  EXPECT_FALSE(db.store().read_committed(2).ok());  // load alone not durable
  EXPECT_FALSE(db.store().read_committed(3).ok());
}

TEST(GroupCommit, FlushedAsyncCommitsSurviveTheCrash) {
  LogDevice log;
  Database db(wal_options(&log));
  db.load(1, 100);
  {
    TxnOptions topts;
    topts.wait = CommitWait::kAsync;
    Txn t = db.begin(TxnKind::Update, EpsilonSpec::serializable(),
                     kInvalidTxn, topts);
    ASSERT_TRUE(t.add(1, 11).ok());
    ASSERT_TRUE(t.commit().ok());
    // The commit is volatile until a group flush covers it...
    EXPECT_LT(log.durable_lsn(), t.commit_lsn());
    db.group_committer()->flush(/*seed=*/1);
    // ...after which it is exactly as safe as a sync commit.
    EXPECT_GE(log.durable_lsn(), t.commit_lsn());
  }
  log.tear_to_durable();
  const RecoveryResult r = db.recover_from_wal();
  EXPECT_EQ(r.committed_txns, 1u);
  EXPECT_EQ(db.store().read_committed(1).value(), 111);
}

TEST(GroupCommit, AsyncBacklogForcesASelfFlush) {
  // Pure-async workloads must not defer durability forever: once
  // kAsyncFlushBacklog commits pile up with no sync leader in sight, the
  // next async committer flushes the group itself.
  LogDevice log;
  Database db(wal_options(&log));
  db.load(1, 0);
  TxnOptions topts;
  topts.wait = CommitWait::kAsync;
  const std::uint64_t n = GroupCommitter::kAsyncFlushBacklog + 2;
  for (std::uint64_t i = 0; i < n; ++i) {
    Txn t = db.begin(TxnKind::Update, EpsilonSpec::serializable(),
                     kInvalidTxn, topts);
    ASSERT_TRUE(t.add(1, 1).ok());
    ASSERT_TRUE(t.commit().ok());
  }
  const GroupCommitStats gs = db.group_committer()->stats();
  EXPECT_EQ(gs.async_commits, n);
  EXPECT_GE(gs.async_self_flushes, 1u);
  EXPECT_GE(log.durable_lsn(), 1u);
}

// --- log-backed recoverable queues ----------------------------------------

TEST(QueueWal, CommittedEnqueueSurvivesTotalLoss) {
  LogDevice log;
  SimNetwork net(2, NetworkOptions{});
  Database db(wal_options(&log));
  QueueEndpoint endpoint(0, net);
  endpoint.attach_wal(&log);
  {
    Txn t = db.begin(TxnKind::Update, EpsilonSpec::unlimited());
    endpoint.enqueue(t, 1, "q", std::string("precious"));
    ASSERT_TRUE(t.commit().ok());
  }
  // Total loss of the endpoint; a fresh one restores from the log.
  QueueEndpoint reborn(0, net);
  reborn.attach_wal(&log);
  Store scratch;
  reborn.restore_from(recover_from_log(log, scratch));
  EXPECT_EQ(reborn.outbound_backlog(), 1u);  // will retransmit
}

TEST(QueueWal, UncommittedEnqueueDoesNotSurvive) {
  LogDevice log;
  SimNetwork net(2, NetworkOptions{});
  Database db(wal_options(&log));
  QueueEndpoint endpoint(0, net);
  endpoint.attach_wal(&log);
  {
    Txn t = db.begin(TxnKind::Update, EpsilonSpec::unlimited());
    endpoint.enqueue(t, 1, "q", std::string("vapor"));
    t.abort();
  }
  Store scratch;
  const RecoveryResult r = recover_from_log(log, scratch);
  EXPECT_TRUE(r.outbound.empty());
}

TEST(QueueWal, DeliveredUnconsumedMessageSurvives) {
  LogDevice log;
  SimNetwork net(2, NetworkOptions{});
  QueueEndpoint endpoint(1, net);
  endpoint.attach_wal(&log);
  Message qdata;
  qdata.from = 0;
  qdata.to = 1;
  qdata.type = "qdata";
  qdata.gtid = (std::uint64_t(0) << 40) | 7;
  qdata.payload = std::make_pair(std::string("q"), std::string("m"));
  ASSERT_TRUE(endpoint.deliver(qdata));

  QueueEndpoint reborn(1, net);
  reborn.attach_wal(&log);
  Store scratch;
  reborn.restore_from(recover_from_log(log, scratch));
  EXPECT_EQ(reborn.depth("q"), 1u);
  // Dedupe set restored: the sender's retransmission is recognized.
  EXPECT_FALSE(reborn.deliver(qdata));
}

TEST(QueueWal, ConsumedMessageDoesNotComeBack) {
  LogDevice log;
  SimNetwork net(2, NetworkOptions{});
  Database db(wal_options(&log));
  QueueEndpoint endpoint(1, net);
  endpoint.attach_wal(&log);
  Message qdata;
  qdata.from = 0;
  qdata.to = 1;
  qdata.gtid = 9;
  qdata.payload = std::make_pair(std::string("q"), std::string("m"));
  ASSERT_TRUE(endpoint.deliver(qdata));
  {
    Txn t = db.begin(TxnKind::Update, EpsilonSpec::unlimited());
    ASSERT_TRUE(endpoint.try_dequeue(t, "q").has_value());
    ASSERT_TRUE(t.commit().ok());
  }
  QueueEndpoint reborn(1, net);
  Store scratch;
  reborn.restore_from(recover_from_log(log, scratch));
  EXPECT_EQ(reborn.depth("q"), 0u);  // exactly-once holds across the crash
}

TEST(QueueWal, ClaimedButUncommittedConsumeComesBack) {
  LogDevice log;
  SimNetwork net(2, NetworkOptions{});
  Database db(wal_options(&log));
  QueueEndpoint endpoint(1, net);
  endpoint.attach_wal(&log);
  Message qdata;
  qdata.from = 0;
  qdata.gtid = 10;
  qdata.payload = std::make_pair(std::string("q"), std::string("m"));
  ASSERT_TRUE(endpoint.deliver(qdata));
  Txn t = db.begin(TxnKind::Update, EpsilonSpec::unlimited());
  ASSERT_TRUE(endpoint.try_dequeue(t, "q").has_value());
  // Crash with the claim open (no commit record).
  QueueEndpoint reborn(1, net);
  Store scratch;
  reborn.restore_from(recover_from_log(log, scratch));
  EXPECT_EQ(reborn.depth("q"), 1u);  // redelivered
  t.abort();
}

// --- randomized crash-replay property --------------------------------------

class WalCrashProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WalCrashProperty, RecoveryIsAlwaysACommittedPrefixState) {
  Rng rng(GetParam());
  LogDevice log;
  Database db(wal_options(&log));
  constexpr int kAccounts = 6;
  constexpr Value kInitial = 1000;
  for (int i = 0; i < kAccounts; ++i) db.load(i, kInitial);
  db.checkpoint();

  // Run random transfers; remember how many committed.
  int committed = 0;
  for (int i = 0; i < 40; ++i) {
    Txn t = db.begin(TxnKind::Update, EpsilonSpec::serializable());
    const Key a = rng.uniform(kAccounts);
    Key b = rng.uniform(kAccounts);
    while (b == a) b = rng.uniform(kAccounts);
    const Value d = 1 + Value(rng.uniform(50));
    ASSERT_TRUE(t.add(a, -d).ok());
    ASSERT_TRUE(t.add(b, +d).ok());
    if (rng.chance(0.7)) {
      ASSERT_TRUE(t.commit().ok());
      ++committed;
    } else {
      t.abort();
    }
    if (rng.chance(0.2)) db.checkpoint();
  }

  // Crash + recover: conservation must hold exactly (atomicity: both legs
  // of every committed transfer, neither leg of any aborted one).  Note the
  // interleaved checkpoints truncate the log, so r.committed_txns counts
  // only post-truncation commits; the conservation check below is the
  // end-to-end property.
  (void)committed;
  const RecoveryResult r = db.recover_from_wal();
  (void)r;
  Value sum = 0;
  for (int i = 0; i < kAccounts; ++i) {
    sum += db.store().read_committed(i).value_or(-1e18);
  }
  EXPECT_EQ(sum, kInitial * kAccounts);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WalCrashProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace atp
