// atp-lint -- the chopping diagnostics engine, CLI face.
//
// Successor of the old `chopper` report tool: parses a job-stream
// description (see src/chop/parser.h) or loads a built-in workload's type
// stream, computes the finest SR/ESR choppings with their full merge
// derivations, lints the result (SC/RB/EP rules with cycle witnesses), and
// statically validates the eps-limit plans divergence control would run with
// (LM rules).  Findings carry stable rule IDs; the exit code makes it a CI
// gate.
//
//   atp-lint [options] [file...]          (stdin if no file/workload)
//
//   --mode=sr|esr|both     correctness notion to lint (default: both)
//   --mode=threads         lint C++ sources for the locking discipline
//                          instead (TH001-TH005, see analysis/thread_lint.h);
//                          positional args become source roots (default:
//                          src), each scanned recursively for .h/.cpp
//   --workload=NAME        built-in type stream: banking|airline|orders|
//                          payroll|all (instead of files)
//   --chop=SPEC            lint this explicit chopping instead of the finest
//                          one; SPEC = "0:0,2;1:0,1" -- per transaction
//                          index, the op indices where pieces start;
//                          unlisted transactions run whole
//   --explain              print the finest-chopping merge derivation
//   --no-plan              skip the eps-limit plan checks (LM rules)
//   --json                 machine-readable report on stdout
//   --dot                  append the chopping graph in Graphviz format
//
// Exit codes: 0 clean, 1 error-severity diagnostics, 2 usage/input error.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/limit_check.h"
#include "analysis/lint.h"
#include "analysis/thread_lint.h"
#include "chop/parser.h"
#include "workload/airline.h"
#include "workload/banking.h"
#include "workload/orders.h"
#include "workload/payroll.h"

using namespace atp;
using namespace atp::analysis;

namespace {

struct Options {
  bool sr = true, esr = true;
  bool threads = false;
  bool json = false, explain = false, plan = true, dot = false;
  std::optional<std::string> chop_spec;
  std::vector<std::string> workloads;
  std::vector<std::string> files;
};

struct Stream {
  std::string source;  ///< file path or workload name
  std::vector<TxnProgram> programs;
};

int usage(int code) {
  std::fprintf(
      code ? stderr : stdout,
      "usage: atp-lint [--mode=sr|esr|both] [--workload=banking|airline|"
      "orders|payroll|all]\n"
      "                [--chop=SPEC] [--explain] [--no-plan] [--json] "
      "[--dot] [file...]\n"
      "       atp-lint --mode=threads [--json] [source-root...]   "
      "(default root: src)\n");
  return code;
}

/// --mode=threads: scan source trees for TH001-TH005 findings.
int run_thread_lint(const Options& opt) {
  std::vector<std::string> roots = opt.files;
  if (roots.empty()) roots.push_back("src");
  LintReport report;
  for (const std::string& root : roots) {
    std::string error;
    if (!lint_thread_tree(root, ThreadLintOptions{}, &report, &error)) {
      std::fprintf(stderr, "atp-lint: %s\n", error.c_str());
      return 2;
    }
  }
  if (opt.json) {
    std::printf("%s\n", report.to_json().c_str());
  } else if (report.diagnostics.empty()) {
    std::printf("threads: clean (no TH diagnostics)\n");
  } else {
    std::printf("%s", report.to_text().c_str());
  }
  return report.ok() ? 0 : 1;
}

std::optional<std::vector<TxnProgram>> builtin_types(const std::string& name) {
  // Instance counts are irrelevant here: the lint runs over the *type*
  // stream the administrator chops off-line.
  if (name == "banking") return make_banking(BankingConfig{}, 1, 1).types;
  if (name == "airline") return make_airline(AirlineConfig{}, 1, 1).types;
  if (name == "orders") return make_orders(OrdersConfig{}, 1, 1).types;
  if (name == "payroll") return make_payroll(PayrollConfig{}, 1, 1).types;
  return std::nullopt;
}

/// "--chop=0:0,2;1:0,1" -> per-txn piece start lists (unlisted txns whole).
std::optional<Chopping> parse_chop_spec(const std::string& spec,
                                        const std::vector<TxnProgram>& programs) {
  std::vector<std::vector<std::size_t>> starts(programs.size(), {0});
  std::istringstream in(spec);
  std::string entry;
  while (std::getline(in, entry, ';')) {
    const std::size_t colon = entry.find(':');
    if (colon == std::string::npos) return std::nullopt;
    std::size_t txn = 0;
    try {
      txn = std::stoul(entry.substr(0, colon));
    } catch (...) {
      return std::nullopt;
    }
    if (txn >= programs.size()) return std::nullopt;
    std::vector<std::size_t> s;
    std::istringstream ops(entry.substr(colon + 1));
    std::string tok;
    while (std::getline(ops, tok, ',')) {
      try {
        s.push_back(std::stoul(tok));
      } catch (...) {
        return std::nullopt;
      }
    }
    if (s.empty() || s.front() != 0) return std::nullopt;
    for (std::size_t i = 1; i < s.size(); ++i) {
      if (s[i] <= s[i - 1] || s[i] >= programs[txn].ops.size()) {
        return std::nullopt;
      }
    }
    starts[txn] = std::move(s);
  }
  return Chopping(std::move(starts));
}

/// Per-type eps-limit plan checks over the chopping's restricted marks.
LintReport lint_limit_plans(const std::vector<TxnProgram>& programs,
                            const Chopping& chopping) {
  const PieceGraph g = build_chopping_graph(programs, chopping);
  LintReport report;
  for (std::size_t t = 0; t < programs.size(); ++t) {
    std::vector<bool> restricted(chopping.piece_count(t));
    for (std::size_t p = 0; p < restricted.size(); ++p) {
      restricted[p] = g.restricted(g.vertex_of(t, p));
    }
    const ChopPlanInfo info = ChopPlanInfo::chain(
        std::move(restricted), programs[t].kind, programs[t].epsilon_limit);
    report.merge(check_limit_plans(info, programs[t].name, t));
  }
  return report;
}

void print_piece_table(const std::vector<TxnProgram>& programs,
                       const Chopping& chopping) {
  const PieceGraph graph = build_chopping_graph(programs, chopping);
  for (std::size_t t = 0; t < programs.size(); ++t) {
    const TxnProgram& p = programs[t];
    const std::size_t k = chopping.piece_count(t);
    std::printf("  %-20s %zu op(s) -> %zu piece(s)", p.name.c_str(),
                p.ops.size(), k);
    const Value zis = graph.inter_sibling_fuzziness(t);
    if (zis == kInfiniteLimit) {
      std::printf("  Z^is=inf");
    } else {
      std::printf("  Z^is=%.0f", zis);
    }
    std::printf("  Limit_t=%.0f\n", p.epsilon_limit);
    for (std::size_t piece = 0; piece < k; ++piece) {
      const auto [b, e] = chopping.piece_range(t, piece, p.ops.size());
      const std::size_t v = graph.vertex_of(t, piece);
      std::printf("    piece %zu: ops [%zu, %zu)%s\n", piece + 1, b, e,
                  graph.restricted(v) ? "  [restricted]" : "");
    }
  }
}

/// One lint pass: (stream, mode) -> report; fills JSON fragments if asked.
struct RunResult {
  std::string mode;
  LintReport report;
  Chopping chopping;
};

RunResult run_mode(const Stream& stream, Mode mode, const Options& opt) {
  RunResult result;
  result.mode = analysis::to_string(mode);

  if (opt.chop_spec) {
    const auto chopping = parse_chop_spec(*opt.chop_spec, stream.programs);
    if (!chopping) {
      std::fprintf(stderr, "atp-lint: bad --chop spec '%s'\n",
                   opt.chop_spec->c_str());
      std::exit(2);
    }
    result.chopping = *chopping;
    result.report = lint_chopping(stream.programs, result.chopping, mode);
  } else {
    ExplainedChopping explained =
        explain_finest_chopping(stream.programs, mode);
    result.chopping = std::move(explained.chopping);
    result.report = lint_chopping(stream.programs, result.chopping, mode);
    if (opt.explain && !opt.json) {
      std::printf("  derivation (%zu merge step(s)):\n",
                  explained.steps.size());
      for (const MergeExplanation& ex : explained.steps) {
        std::printf("    %s\n", ex.to_string(stream.programs).c_str());
      }
    }
  }
  if (opt.plan) {
    result.report.merge(lint_limit_plans(stream.programs, result.chopping));
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&](const std::string& prefix) -> std::optional<std::string> {
      if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
      return std::nullopt;
    };
    if (const auto v = value_of("--mode=")) {
      if (*v == "threads") {
        opt.threads = true;
        continue;
      }
      opt.sr = *v == "sr" || *v == "both";
      opt.esr = *v == "esr" || *v == "both";
      if (!opt.sr && !opt.esr) return usage(2);
    } else if (const auto v = value_of("--workload=")) {
      if (*v == "all") {
        opt.workloads = {"banking", "airline", "orders", "payroll"};
      } else {
        opt.workloads.push_back(*v);
      }
    } else if (const auto v = value_of("--chop=")) {
      opt.chop_spec = *v;
    } else if (arg == "--json") {
      opt.json = true;
    } else if (arg == "--explain") {
      opt.explain = true;
    } else if (arg == "--no-plan") {
      opt.plan = false;
    } else if (arg == "--dot") {
      opt.dot = true;
    } else if (arg == "--help" || arg == "-h") {
      return usage(0);
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(2);
    } else {
      opt.files.push_back(arg);
    }
  }

  if (opt.threads) return run_thread_lint(opt);

  std::vector<Stream> streams;
  for (const std::string& name : opt.workloads) {
    auto types = builtin_types(name);
    if (!types) {
      std::fprintf(stderr, "atp-lint: unknown workload '%s'\n", name.c_str());
      return 2;
    }
    streams.push_back(Stream{name, std::move(*types)});
  }
  for (const std::string& path : opt.files) {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "atp-lint: cannot open %s\n", path.c_str());
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    auto parsed = parse_job_stream(buf.str());
    if (!parsed.ok()) {
      std::fprintf(stderr, "atp-lint: %s: parse error: %s\n", path.c_str(),
                   parsed.status().to_string().c_str());
      return 2;
    }
    streams.push_back(Stream{path, std::move(parsed.value().programs)});
  }
  if (streams.empty()) {
    std::ostringstream buf;
    buf << std::cin.rdbuf();
    auto parsed = parse_job_stream(buf.str());
    if (!parsed.ok()) {
      std::fprintf(stderr, "atp-lint: <stdin>: parse error: %s\n",
                   parsed.status().to_string().c_str());
      return 2;
    }
    streams.push_back(Stream{"<stdin>", std::move(parsed.value().programs)});
  }

  std::vector<Mode> modes;
  if (opt.sr) modes.push_back(Mode::Sr);
  if (opt.esr) modes.push_back(Mode::Esr);

  std::size_t total_errors = 0;
  std::ostringstream json;
  json << "{\"runs\":[";
  bool first_run = true;
  for (const Stream& stream : streams) {
    if (!opt.json) {
      std::printf("== %s: %zu transaction type(s) ==\n", stream.source.c_str(),
                  stream.programs.size());
    }
    for (Mode mode : modes) {
      if (!opt.json) {
        std::printf("-- %s %s --\n", analysis::to_string(mode),
                    opt.chop_spec ? "chopping (from --chop)"
                                  : "finest chopping");
      }
      const RunResult result = run_mode(stream, mode, opt);
      total_errors += result.report.error_count();
      if (opt.json) {
        if (!first_run) json << ",";
        first_run = false;
        json << "{\"source\":\"" << stream.source << "\",\"mode\":\""
             << result.mode << "\",\"report\":" << result.report.to_json()
             << "}";
      } else {
        print_piece_table(stream.programs, result.chopping);
        if (result.report.diagnostics.empty()) {
          std::printf("  clean: no diagnostics\n");
        } else {
          std::printf("%s", result.report.to_text().c_str());
        }
        if (opt.dot) {
          std::printf("%s\n",
                      build_chopping_graph(stream.programs, result.chopping)
                          .to_dot()
                          .c_str());
        }
        std::printf("\n");
      }
    }
  }
  if (opt.json) {
    json << "],\"errors\":" << total_errors << "}";
    std::printf("%s\n", json.str().c_str());
  }
  return total_errors == 0 ? 0 : 1;
}
