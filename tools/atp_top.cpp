// atp-top: terminal inspector for a running (or finished) ATP process.
//
// Polls a metrics snapshot -- over HTTP from a live process's ObsServer
// (--url) or from a dumped snapshot file (--file) -- and renders epsilon-
// budget utilization bars, the per-stripe lock contention heatmap and
// commit/abort throughput (src/obs/top_render.h does the math).
//
//   atp-top --url 127.0.0.1:9464             # live, refresh every second
//   atp-top --url 127.0.0.1:9464 --once      # one frame, no screen clear
//   atp-top --file snapshot.json --once      # inspect a SIGUSR1 dump
//
// Start any bench with --metrics-port 9464 (or set
// DatabaseOptions::metrics_port) to give atp-top something to watch.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>

#include "obs/http_exporter.h"
#include "obs/top_render.h"

namespace {

struct Args {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::string file;
  bool once = false;
  double interval_s = 1.0;
  std::size_t width = 80;
};

void usage() {
  std::cerr
      << "usage: atp-top (--url HOST:PORT | --file SNAPSHOT.json)\n"
         "               [--once] [--interval SECONDS] [--width COLS]\n";
}

bool parse_url(const std::string& url, Args* a) {
  const auto colon = url.rfind(':');
  if (colon == std::string::npos || colon + 1 >= url.size()) return false;
  a->host = url.substr(0, colon);
  const long p = std::strtol(url.c_str() + colon + 1, nullptr, 10);
  if (p <= 0 || p > 65535) return false;
  a->port = std::uint16_t(p);
  return true;
}

bool fetch(const Args& a, atp::obs::MetricsSnapshot* out) {
  std::string body;
  if (!a.file.empty()) {
    std::ifstream in(a.file);
    if (!in) return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    body = ss.str();
  } else if (!atp::obs::http_get(a.host, a.port, "/snapshot.json", &body)) {
    return false;
  }
  return atp::obs::parse_snapshot_json(body, out);
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    // Accept both `--flag value` and `--flag=value`.
    std::string inline_value;
    bool has_inline = false;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      inline_value = arg.substr(eq + 1);
      arg.resize(eq);
      has_inline = true;
    }
    auto next = [&]() -> const char* {
      if (has_inline) return inline_value.c_str();
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--url") {
      const char* v = next();
      if (v == nullptr || !parse_url(v, &args)) {
        usage();
        return 2;
      }
    } else if (arg == "--file") {
      const char* v = next();
      if (v == nullptr) {
        usage();
        return 2;
      }
      args.file = v;
    } else if (arg == "--once") {
      args.once = true;
    } else if (arg == "--interval") {
      const char* v = next();
      args.interval_s = v != nullptr ? std::strtod(v, nullptr) : 0;
      if (args.interval_s <= 0) {
        usage();
        return 2;
      }
    } else if (arg == "--width") {
      const char* v = next();
      args.width = v != nullptr ? std::size_t(std::strtoul(v, nullptr, 10)) : 0;
      if (args.width < 40) args.width = 80;
    } else {
      usage();
      return arg == "--help" || arg == "-h" ? 0 : 2;
    }
  }
  if (args.port == 0 && args.file.empty()) {
    usage();
    return 2;
  }

  atp::obs::TopOptions topts;
  topts.width = args.width;

  atp::obs::MetricsSnapshot prev;
  bool have_prev = false;
  for (;;) {
    atp::obs::MetricsSnapshot now;
    if (!fetch(args, &now)) {
      std::cerr << "atp-top: cannot fetch snapshot from "
                << (args.file.empty()
                        ? args.host + ":" + std::to_string(args.port)
                        : args.file)
                << "\n";
      return 1;
    }
    const std::string frame =
        atp::obs::render_top(now, have_prev ? &prev : nullptr, topts);
    if (args.once) {
      std::fputs(frame.c_str(), stdout);
      return 0;
    }
    // ANSI home+clear keeps the display steady without a curses dependency.
    std::fputs("\x1b[H\x1b[2J", stdout);
    std::fputs(frame.c_str(), stdout);
    std::fflush(stdout);
    prev = std::move(now);
    have_prev = true;
    std::this_thread::sleep_for(
        std::chrono::milliseconds(std::int64_t(args.interval_s * 1000)));
  }
}
