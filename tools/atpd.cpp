// atpd: the ATP network server.
//
// Serves the binary wire protocol (src/server/protocol.h) over loopback TCP,
// mapping client classes to epsilon-specs through the admission controller.
// Pair it with --metrics-port and atp-top to watch sessions, admission
// outcomes, and the engine's epsilon budgets live.
//
//   atpd --port 7411                          # DC scheduler, stock classes
//   atpd --port 0 --scheduler cc              # kernel-assigned port
//   atpd --class vip:50:50:200:64             # add/override a class
//   atpd --metrics-port 9464 --keys 1000      # observable, preloaded
//   atpd --certify --metrics-port 9464        # live SR/ESR certification
//   atpd --slow-ms 50                         # log requests over 50ms
//
// Classes are name:import:export[:budget[:window]] ("inf" allowed); the
// defaults are gold (eps 0), silver (metered), bronze (wide open).  Runs
// until SIGINT/SIGTERM.  With --certify the exit code is 3 when the online
// certifier saw a violation.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "audit/online_certifier.h"
#include "obs/metrics_registry.h"
#include "sched/database.h"
#include "server/admission.h"
#include "server/server.h"
#include "server/transport.h"
#include "trace/tracer.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;
void on_signal(int) { g_stop = 1; }

struct Args {
  std::uint16_t port = 7411;
  std::uint16_t metrics_port = 0;
  std::size_t workers = 4;
  std::size_t max_sessions = 1024;
  atp::SchedulerKind scheduler = atp::SchedulerKind::DC;
  std::vector<atp::server::ClassPolicy> classes;
  atp::Key keys = 0;  ///< preload keys [0, keys) with value 0
  bool certify = false;        ///< run the online SR/ESR certifier
  std::size_t slow_ms = 0;     ///< slow-request log threshold (0 = off)
};

void usage() {
  std::cerr << "usage: atpd [--port N] [--scheduler cc|dc|odc] [--workers N]\n"
               "            [--class name:import:export[:budget[:window]]]...\n"
               "            [--metrics-port N] [--keys N] [--max-sessions N]\n"
               "            [--certify] [--slow-ms N]\n";
}

bool parse_args(int argc, char** argv, Args* a) {
  auto next = [&](int& i) -> const char* {
    return i + 1 < argc ? argv[++i] : nullptr;
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* v = nullptr;
    if (arg == "--port" && (v = next(i))) {
      a->port = std::uint16_t(std::strtoul(v, nullptr, 10));
    } else if (arg == "--metrics-port" && (v = next(i))) {
      a->metrics_port = std::uint16_t(std::strtoul(v, nullptr, 10));
    } else if (arg == "--workers" && (v = next(i))) {
      a->workers = std::strtoul(v, nullptr, 10);
    } else if (arg == "--max-sessions" && (v = next(i))) {
      a->max_sessions = std::strtoul(v, nullptr, 10);
    } else if (arg == "--keys" && (v = next(i))) {
      a->keys = atp::Key(std::strtoull(v, nullptr, 10));
    } else if (arg == "--certify") {
      a->certify = true;
    } else if (arg == "--slow-ms" && (v = next(i))) {
      a->slow_ms = std::strtoul(v, nullptr, 10);
    } else if (arg == "--scheduler" && (v = next(i))) {
      const std::string s = v;
      if (s == "cc") {
        a->scheduler = atp::SchedulerKind::CC;
      } else if (s == "dc") {
        a->scheduler = atp::SchedulerKind::DC;
      } else if (s == "odc") {
        a->scheduler = atp::SchedulerKind::ODC;
      } else {
        return false;
      }
    } else if (arg == "--class" && (v = next(i))) {
      atp::server::ClassPolicy p;
      if (!atp::server::parse_class_policy(v, &p)) {
        std::cerr << "atpd: bad --class spec '" << v << "'\n";
        return false;
      }
      a->classes.push_back(std::move(p));
    } else {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse_args(argc, argv, &args)) {
    usage();
    return 2;
  }

  // User classes override same-named defaults; unnamed defaults stay.
  std::vector<atp::server::ClassPolicy> classes =
      atp::server::default_classes();
  for (auto& user : args.classes) {
    bool replaced = false;
    for (auto& d : classes) {
      if (d.name == user.name) {
        d = user;
        replaced = true;
        break;
      }
    }
    if (!replaced) classes.push_back(std::move(user));
  }

  atp::DatabaseOptions dbo;
  dbo.scheduler = args.scheduler;
  dbo.metrics_port = args.metrics_port;
  atp::obs::MetricsRegistry metrics;
  dbo.metrics = &metrics;
  std::unique_ptr<atp::Tracer> tracer;
  if (args.certify) {
    tracer = std::make_unique<atp::Tracer>(std::size_t(1) << 18);
    tracer->attach_metrics(&metrics);
    dbo.tracer = tracer.get();
  }
  atp::Database db(dbo);
  for (atp::Key k = 0; k < args.keys; ++k) db.load(k, 0);

  std::unique_ptr<atp::OnlineCertifier> certifier;
  if (args.certify) {
    atp::OnlineCertifierOptions co;
    // ET-level SR cycles are the paid-for divergence under DC/ODC; only a
    // CC schedule promises conflict-serializability.
    co.check_sr = args.scheduler == atp::SchedulerKind::CC;
    co.metrics = &metrics;
    certifier = std::make_unique<atp::OnlineCertifier>(*tracer, co);
    certifier->start();
  }

  auto transport = std::make_unique<atp::server::TcpTransport>(args.port);
  if (!transport->ok()) {
    std::cerr << "atpd: cannot listen on 127.0.0.1:" << args.port << "\n";
    return 1;
  }

  atp::server::ServerOptions so;
  so.workers = args.workers;
  so.classes = std::move(classes);
  so.metrics = &metrics;
  so.max_sessions = args.max_sessions;
  so.slow_request_threshold = std::chrono::milliseconds(args.slow_ms);
  atp::server::AtpServer server(db, std::move(transport), std::move(so));

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);

  std::cout << "atpd: listening on 127.0.0.1:" << server.port() << " ("
            << atp::to_string(args.scheduler) << " scheduler, "
            << args.workers << " workers)\n";
  for (const auto& c : server.admission().classes()) {
    std::cout << "atpd: class " << c.name << " import<=" << c.import_ceiling
              << " export<=" << c.export_ceiling << " budget="
              << c.concurrent_budget << " window=" << c.window << "\n";
  }
  if (args.metrics_port != 0) {
    std::cout << "atpd: metrics on 127.0.0.1:" << args.metrics_port
              << " (/metrics, /snapshot.json)\n";
  }
  if (args.certify) {
    std::cout << "atpd: online certifier on ("
              << (args.scheduler == atp::SchedulerKind::CC ? "SR+ESR" : "ESR")
              << ", audit.online.* in /snapshot.json)\n";
  }
  if (args.slow_ms != 0) {
    std::cout << "atpd: logging requests slower than " << args.slow_ms
              << "ms\n";
  }
  std::cout.flush();

  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  std::cout << "atpd: shutting down (" << server.active_sessions()
            << " sessions)\n";
  server.stop();
  if (certifier) {
    certifier->stop();
    const atp::OnlineCertifierStats s = certifier->stats();
    std::cout << "atpd: online certifier: " << s.violations()
              << " violations, " << s.retired_nodes << " retired, peak window "
              << s.window_nodes_peak << " nodes, max lag " << s.max_lag_us
              << "us" << (s.degraded ? " (DEGRADED: events dropped)" : "")
              << "\n";
    for (const atp::OnlineViolation& v : certifier->violations()) {
      std::cout << "atpd: " << v.witness << "\n";
    }
    if (s.violations() > 0) return 3;
  }
  return 0;
}
