// chopper -- the off-line administrator tool the paper assumes exists.
//
// Reads a job-stream description (see src/chop/parser.h for the format),
// computes the finest SR- and ESR-choppings, and reports per transaction:
// piece boundaries, restricted marks, inter-sibling fuzziness Z^is, and the
// eps budget divergence control would run with (Eq. 6).  With --dot the
// chopping graph is emitted as Graphviz.
//
//   ./chopper [--sr|--esr] [--dot] [file]        (stdin if no file)
//
// Example input:
//   txn transfer update eps=500
//     add checking bound=100
//     add savings bound=100
//   txn audit query eps=250 whole
//     read checking
//     read savings
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "chop/analyzer.h"
#include "chop/parser.h"

using namespace atp;

namespace {

void report(const std::vector<TxnProgram>& programs, const Chopping& chopping,
            const char* label) {
  std::printf("== %s chopping ==\n", label);
  const PieceGraph graph = build_chopping_graph(programs, chopping);
  for (std::size_t t = 0; t < programs.size(); ++t) {
    const TxnProgram& p = programs[t];
    const std::size_t k = chopping.piece_count(t);
    std::printf("  %-16s %zu op(s) -> %zu piece(s)", p.name.c_str(),
                p.ops.size(), k);
    const Value zis = graph.inter_sibling_fuzziness(t);
    if (zis == kInfiniteLimit) {
      std::printf("  Z^is=inf");
    } else {
      std::printf("  Z^is=%.0f", zis);
    }
    std::printf("  Limit_t=%.0f  Limit^DC=%.0f\n", p.epsilon_limit,
                std::max(0.0, p.epsilon_limit - (zis == kInfiniteLimit
                                                     ? p.epsilon_limit
                                                     : zis)));
    for (std::size_t piece = 0; piece < k; ++piece) {
      const auto [b, e] = chopping.piece_range(t, piece, p.ops.size());
      const std::size_t v = graph.vertex_of(t, piece);
      std::printf("    piece %zu: ops [%zu, %zu)%s\n", piece + 1, b, e,
                  graph.restricted(v) ? "  [restricted]" : "");
    }
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  bool want_sr = true, want_esr = true, want_dot = false;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--sr") {
      want_esr = false;
    } else if (arg == "--esr") {
      want_sr = false;
    } else if (arg == "--dot") {
      want_dot = true;
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: chopper [--sr|--esr] [--dot] [file]\n");
      return 0;
    } else {
      path = arg;
    }
  }

  std::string text;
  if (path.empty()) {
    std::ostringstream buf;
    buf << std::cin.rdbuf();
    text = buf.str();
  } else {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    text = buf.str();
  }

  auto parsed = parse_job_stream(text);
  if (!parsed.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 parsed.status().to_string().c_str());
    return 1;
  }
  const auto& programs = parsed.value().programs;
  std::printf("job stream: %zu transaction(s), %zu item(s)\n\n",
              programs.size(), parsed.value().item_names.size());

  if (want_sr) {
    const Chopping sr = finest_sr_chopping(programs);
    report(programs, sr, "finest SR");
    if (want_dot) {
      std::printf("%s\n", build_chopping_graph(programs, sr).to_dot().c_str());
    }
  }
  if (want_esr) {
    const Chopping esr = finest_esr_chopping(programs);
    report(programs, esr, "finest ESR");
    const Status valid = validate_esr_chopping(programs, esr);
    std::printf("Definition 1 check: %s\n\n",
                valid.ok() ? "satisfied" : valid.to_string().c_str());
    if (want_dot) {
      std::printf("%s\n",
                  build_chopping_graph(programs, esr).to_dot().c_str());
    }
  }
  return 0;
}
