// trace_audit -- run a workload under one of the paper's methods with the
// tracer attached, certify the captured history (SR for CC schedulers at
// piece granularity, ESR ledger replay always), and print the verdict.
// Optionally export the trace as Chrome trace_event JSON (load it in
// chrome://tracing or https://ui.perfetto.dev) or newline-delimited JSON.
//
//   ./trace_audit [--method=NAME] [--workload=NAME] [--txns=N] [--seed=N]
//                 [--workers=N] [--chrome=FILE] [--ndjson=FILE]
//
//   methods:   baseline_sr  method1  method2  method3   (default method3)
//   workloads: banking  airline  orders  payroll        (default banking)
//
// Exit status 0 iff every applicable certifier passes on a complete trace.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>

#include "audit/esr_certifier.h"
#include "audit/sr_certifier.h"
#include "engine/executor.h"
#include "trace/export.h"
#include "trace/tracer.h"
#include "workload/airline.h"
#include "workload/banking.h"
#include "workload/orders.h"
#include "workload/payroll.h"

using namespace atp;

namespace {

std::optional<MethodConfig> method_by_name(const std::string& name) {
  if (name == "baseline_sr") return MethodConfig::baseline_sr();
  if (name == "method1") return MethodConfig::method1(DistPolicy::Dynamic);
  if (name == "method2") return MethodConfig::method2();
  if (name == "method3") return MethodConfig::method3(DistPolicy::Dynamic);
  return std::nullopt;
}

std::optional<Workload> workload_by_name(const std::string& name,
                                         std::size_t txns,
                                         std::uint64_t seed) {
  if (name == "banking") return make_banking(BankingConfig{}, txns, seed);
  if (name == "airline") return make_airline(AirlineConfig{}, txns, seed);
  if (name == "orders") return make_orders(OrdersConfig{}, txns, seed);
  if (name == "payroll") return make_payroll(PayrollConfig{}, txns, seed);
  return std::nullopt;
}

bool write_file(const std::string& path,
                void (*writer)(const std::vector<TraceEvent>&, std::ostream&),
                const std::vector<TraceEvent>& events) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  writer(events, out);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string method_name = "method3";
  std::string workload_name = "banking";
  std::string chrome_path, ndjson_path;
  std::size_t txns = 500;
  std::uint64_t seed = 1;
  std::size_t workers = 4;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* prefix) -> std::optional<std::string> {
      if (arg.rfind(prefix, 0) == 0) return arg.substr(std::strlen(prefix));
      return std::nullopt;
    };
    if (auto v = value("--method=")) {
      method_name = *v;
    } else if (auto v = value("--workload=")) {
      workload_name = *v;
    } else if (auto v = value("--txns=")) {
      txns = std::strtoull(v->c_str(), nullptr, 10);
    } else if (auto v = value("--seed=")) {
      seed = std::strtoull(v->c_str(), nullptr, 10);
    } else if (auto v = value("--workers=")) {
      workers = std::strtoull(v->c_str(), nullptr, 10);
    } else if (auto v = value("--chrome=")) {
      chrome_path = *v;
    } else if (auto v = value("--ndjson=")) {
      ndjson_path = *v;
    } else {
      std::printf(
          "usage: trace_audit [--method=baseline_sr|method1|method2|method3]\n"
          "                   [--workload=banking|airline|orders|payroll]\n"
          "                   [--txns=N] [--seed=N] [--workers=N]\n"
          "                   [--chrome=FILE] [--ndjson=FILE]\n");
      return arg == "--help" || arg == "-h" ? 0 : 1;
    }
  }

  const auto method = method_by_name(method_name);
  if (!method) {
    std::fprintf(stderr, "unknown method %s\n", method_name.c_str());
    return 1;
  }
  const auto workload = workload_by_name(workload_name, txns, seed);
  if (!workload) {
    std::fprintf(stderr, "unknown workload %s\n", workload_name.c_str());
    return 1;
  }

  auto plan = ExecutionPlan::build(workload->types, *method);
  if (!plan.ok()) {
    std::fprintf(stderr, "plan error: %s\n", plan.status().to_string().c_str());
    return 1;
  }

  Tracer tracer(1 << 20);
  DatabaseOptions dbo = Executor::database_options(*method);
  dbo.tracer = &tracer;
  Database db(dbo);
  workload->load_into(db);
  ExecutorOptions opts;
  opts.workers = workers;
  opts.seed = seed;
  const ExecutorReport report =
      Executor::run(db, plan.value(), workload->instances, opts);

  std::printf("ran %s on %s: %zu txns, %llu committed, %llu rolled back, "
              "%.0f tps\n",
              method->name().c_str(), workload_name.c_str(),
              workload->instances.size(),
              static_cast<unsigned long long>(report.committed),
              static_cast<unsigned long long>(report.rolled_back),
              report.throughput_tps);

  const auto events = tracer.collect();
  const std::uint64_t dropped = tracer.dropped();
  std::printf("trace: %zu events, %llu dropped\n", events.size(),
              static_cast<unsigned long long>(dropped));

  if (!chrome_path.empty() &&
      !write_file(chrome_path, write_chrome_trace, events)) {
    return 1;
  }
  if (!ndjson_path.empty() && !write_file(ndjson_path, write_ndjson, events)) {
    return 1;
  }
  if (!chrome_path.empty()) {
    std::printf("chrome trace written to %s\n", chrome_path.c_str());
  }
  if (!ndjson_path.empty()) {
    std::printf("ndjson written to %s\n", ndjson_path.c_str());
  }

  bool ok = true;

  // SR certification is sound only under pure locking: divergence control
  // grants fuzzy locks, so its histories are judged by the ESR ledger alone.
  if (method->sched == SchedulerKind::CC) {
    const SrReport sr = certify_sr(events, nullptr, dropped);
    std::printf("piece level:    %s\n", sr.describe().c_str());
    ok = ok && sr.serializable && sr.complete;
    if (method->chop == ChopMode::None) {
      const auto merge = piece_merge_map(events);
      const SrReport merged = certify_sr(events, &merge, dropped);
      std::printf("original level: %s\n", merged.describe().c_str());
      ok = ok && merged.serializable && merged.complete;
    }
  }

  const EsrReport esr = certify_esr(events, dropped);
  std::printf("%s\n", esr.describe().c_str());
  ok = ok && esr.ok && esr.complete;

  std::printf("verdict: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
